#ifndef RDFSUM_SERVER_SERVER_H_
#define RDFSUM_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "query/plan.h"
#include "server/plan_cache.h"
#include "server/snapshot.h"
#include "util/counters.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace rdfsum::server {

struct ServerOptions {
  /// Listen address. Port 0 binds an ephemeral port; read it back with
  /// port() after Start() — the test and smoke harnesses depend on this.
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Admission control: at most `num_workers` connections are served
  /// concurrently and at most `queue_depth` more may wait for a worker;
  /// a connection beyond both is refused with kResourceExhausted before
  /// HELLO (never a silent hang).
  uint32_t num_workers = 4;
  uint32_t queue_depth = 16;
  /// Plan-skeleton cache over normalized BGP shapes (server/plan_cache.h).
  bool plan_cache = true;
  size_t plan_cache_capacity = 256;
  /// Planner used when a request leaves the planner byte at its default.
  query::PlannerMode default_planner = query::PlannerMode::kGreedy;
  /// Per-request governance defaults; a request's nonzero timeout_ms /
  /// max_rows override these, its zeros inherit them. The memory budget
  /// has no wire field and always comes from here.
  util::ExecContext::Limits default_limits;
  /// Intra-query parallelism applied when a request leaves its parallelism
  /// field at 0: 1 = sequential (the default), 0 = hardware concurrency,
  /// k = k morsel workers.
  uint32_t default_parallelism = 1;
  /// Hard per-request cap on granted parallelism (after defaults resolve).
  uint32_t max_parallelism = 8;
};

/// The `rdfsum serve` daemon: serves BGP queries over one frozen image
/// through the wire protocol of docs/PROTOCOL.md.
///
/// Concurrency model. One accept thread feeds a bounded connection queue
/// drained by `num_workers` worker threads; each connection is handled by
/// one worker for its whole lifetime. The live Snapshot is published behind
/// a shared_ptr: every request copies the pointer once up front and runs
/// entirely against that epoch, so Reload() — which opens the new image
/// first, then swaps the pointer and clears the plan cache — is invisible
/// to in-flight queries. The displaced snapshot stays alive until its last
/// request drops its reference (the drain invariant); there is no
/// stop-the-world anywhere on the swap path.
///
/// Failpoints: `serve:accept` (each accepted connection) and `serve:swap`
/// (each Reload, before the new image is opened).
class Server {
 public:
  Server() = default;
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens `image_path` as epoch 1, binds + listens, and spawns the accept
  /// and worker threads. On any failure nothing keeps running.
  /// (Two overloads instead of `= {}`: GCC PR 88165, see fault_injection.h.)
  Status Start(const std::string& image_path, const ServerOptions& options);
  Status Start(const std::string& image_path) {
    return Start(image_path, ServerOptions());
  }

  /// The bound port (resolves ephemeral binds). Valid after Start().
  uint16_t port() const { return port_; }

  /// Atomically replaces the live snapshot with a freshly opened (and fully
  /// validated) image at `path` — or re-opens the current path when `path`
  /// is empty — bumping the epoch and clearing the plan cache. On failure
  /// the current snapshot keeps serving untouched. Failpoint: `serve:swap`.
  Status Reload(const std::string& path);

  /// Signals shutdown: stops accepting, wakes idle workers, lets in-flight
  /// connections finish their current request loop. Idempotent; safe to
  /// call from a worker thread (the SHUTDOWN command path).
  void Stop();

  /// Joins every thread. Call once, after Stop() (or after a client sent
  /// SHUTDOWN). Not safe from a worker thread.
  void Wait();

  /// True once Stop() ran (including via a client's SHUTDOWN command) —
  /// what the CLI's serve loop polls to exit cleanly.
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  /// The current epoch's snapshot (shared — callers may hold it across a
  /// swap, exactly like a request does).
  std::shared_ptr<Snapshot> snapshot() const;

  /// The STATS payload: `key: value` lines — epoch, image path/size, query
  /// and admission counters, plan-cache hit rate, per-phase latency
  /// (parse/plan/exec), and one line per memoized summary mint.
  std::string StatsText() const;

 private:
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);
  /// One QUERY request; false ends the connection (protocol violation).
  bool HandleQuery(int fd, const std::string& payload);

  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<Snapshot> snapshot_;
  std::atomic<uint64_t> epoch_{0};

  std::unique_ptr<PlanCache> plan_cache_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  // accepted fds waiting for a worker
  std::atomic<bool> stop_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> queries_ok_{0};
  std::atomic<uint64_t> queries_failed_{0};
  std::atomic<uint64_t> admission_rejected_{0};
  /// Fan-out admission: a k-way query holds k-1 slots from this pool for
  /// its whole drain (sized to num_workers at Start), so total in-flight
  /// query threads stay bounded by 2x num_workers however parallel the
  /// requests are. An empty pool degrades the request toward sequential —
  /// admission shapes fan-out, it never queues or rejects.
  std::atomic<uint32_t> spare_parallel_slots_{0};
  std::atomic<uint64_t> parallel_queries_{0};
  std::atomic<uint64_t> parallel_slots_trimmed_{0};
  std::atomic<uint64_t> reloads_{0};
  util::PhaseCounter parse_phase_;
  util::PhaseCounter plan_phase_;
  util::PhaseCounter exec_phase_;
};

}  // namespace rdfsum::server

#endif  // RDFSUM_SERVER_SERVER_H_
