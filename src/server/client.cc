#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace rdfsum::server {

StatusOr<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                  uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Status s = Status::IOError("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  // Small request frames must not wait out Nagle against delayed ACKs.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  Frame hello;
  Status rs = ReadFrame(fd, &hello);
  if (!rs.ok()) {
    ::close(fd);
    return rs;
  }
  if (hello.type == kFrameDone) {
    // The server refused admission before HELLO; surface its verdict.
    DoneReply done;
    ::close(fd);
    if (!DecodeDone(hello.payload, &done)) {
      return Status::Corruption("malformed DONE reply at connect");
    }
    Status refused = StatusFromWire(done.code, done.message);
    if (refused.ok()) {
      return Status::Corruption("server closed connection with OK DONE");
    }
    return refused;
  }
  if (hello.type != kFrameHello) {
    ::close(fd);
    return Status::Corruption("expected HELLO, got frame type " +
                              std::to_string(hello.type));
  }
  PayloadReader r(hello.payload);
  char magic[4];
  uint16_t major = 0, minor = 0;
  uint64_t epoch = 0;
  bool ok = true;
  for (char& c : magic) {
    uint8_t b = 0;
    ok = ok && r.ReadU8(&b);
    c = static_cast<char>(b);
  }
  ok = ok && r.ReadU16(&major) && r.ReadU16(&minor) && r.ReadU64(&epoch) &&
       r.AtEnd();
  if (!ok || std::memcmp(magic, kHelloMagic, sizeof magic) != 0) {
    ::close(fd);
    return Status::Corruption("malformed HELLO payload");
  }
  if (major != kProtocolMajor) {
    ::close(fd);
    return Status::NotSupported("server speaks protocol major " +
                                std::to_string(major) + ", client speaks " +
                                std::to_string(kProtocolMajor));
  }
  std::unique_ptr<Client> client(new Client(fd));
  client->server_epoch_ = epoch;
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::DrainToDone(const RowFn* on_row, std::string* text,
                           uint64_t* rows_out) {
  uint64_t rows = 0;
  for (;;) {
    Frame frame;
    Status rs = ReadFrame(fd_, &frame);
    if (!rs.ok()) return rs;
    switch (frame.type) {
      case kFrameRow: {
        PayloadReader r(frame.payload);
        uint32_t ncols = 0;
        if (!r.ReadU32(&ncols)) {
          return Status::Corruption("malformed ROW frame");
        }
        std::vector<std::string> cols(ncols);
        for (std::string& c : cols) {
          if (!r.ReadLenBytes(&c)) {
            return Status::Corruption("malformed ROW frame");
          }
        }
        if (!r.AtEnd()) return Status::Corruption("trailing bytes in ROW");
        ++rows;
        if (on_row && !(*on_row)(cols) && !cancel_sent_) {
          cancel_sent_ = true;
          RDFSUM_RETURN_IF_ERROR(WriteFrame(fd_, kFrameCancel, {}));
        }
        continue;
      }
      case kFrameText:
        if (text) text->append(frame.payload);
        continue;
      case kFrameDone: {
        DoneReply done;
        if (!DecodeDone(frame.payload, &done)) {
          return Status::Corruption("malformed DONE payload");
        }
        if (rows_out) *rows_out = rows;
        return StatusFromWire(done.code, done.message);
      }
      default:
        return Status::Corruption("unexpected frame type " +
                                  std::to_string(frame.type) +
                                  " in response stream");
    }
  }
}

Status Client::Query(const std::string& text, QueryRequest req,
                     const RowFn& on_row, uint64_t* rows_out) {
  req.query = text;
  cancel_sent_ = false;
  RDFSUM_RETURN_IF_ERROR(
      WriteFrame(fd_, kFrameQuery, EncodeQueryRequest(req)));
  return DrainToDone(&on_row, nullptr, rows_out);
}

StatusOr<std::string> Client::Stats() {
  RDFSUM_RETURN_IF_ERROR(WriteFrame(fd_, kFrameStats, {}));
  std::string text;
  Status s = DrainToDone(nullptr, &text, nullptr);
  if (!s.ok()) return s;
  return text;
}

Status Client::Reload(const std::string& path) {
  std::string payload;
  AppendLenBytes(&payload, path);
  RDFSUM_RETURN_IF_ERROR(WriteFrame(fd_, kFrameReload, payload));
  return DrainToDone(nullptr, nullptr, nullptr);
}

Status Client::Shutdown() {
  RDFSUM_RETURN_IF_ERROR(WriteFrame(fd_, kFrameShutdown, {}));
  return DrainToDone(nullptr, nullptr, nullptr);
}

}  // namespace rdfsum::server
