#ifndef RDFSUM_SERVER_SNAPSHOT_H_
#define RDFSUM_SERVER_SNAPSHOT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "query/evaluator.h"
#include "rdf/graph.h"
#include "store/mmap_store.h"
#include "summary/cardinality.h"
#include "summary/summarizer.h"
#include "util/statusor.h"

namespace rdfsum::server {

/// One immutable epoch of the serving daemon: a validated mmap'd `.rsb`
/// image, a zero-copy BgpEvaluator over it, and lazily-minted summaries.
/// Snapshots are published behind shared_ptr (server/server.h): every
/// in-flight request holds a reference, so an epoch swap never invalidates
/// a running query — the old snapshot drains and frees when its last
/// reference drops (the drain invariant, src/server/README.md).
///
/// Thread safety. All query-path members are read-only after Open():
/// the evaluator plans and opens cursors from const state, and the
/// view-mode Dictionary's decode cache is internally locked. Summary
/// minting is the one lazy mutation, and it is isolated by construction:
/// each kind mints into a *private* graph with a *private* dictionary
/// (the table is decoded through the serving dictionary — a read — and
/// re-interned), so minting never writes memory a concurrent reader
/// probes. A std::once_flag per kind makes each mint happen exactly once;
/// concurrent first requests for different kinds proceed independently.
class Snapshot {
 public:
  /// Opens and validates `path` (store::MmapStore's corruption wall runs in
  /// full). `epoch` is the server-assigned generation number.
  static StatusOr<std::shared_ptr<Snapshot>> Open(const std::string& path,
                                                  uint64_t epoch);

  const std::string& path() const { return path_; }
  uint64_t epoch() const { return epoch_; }
  uint64_t num_triples() const { return num_triples_; }

  /// The zero-copy evaluator over the image: planning reads the frozen
  /// TableStats, cursors scan the mmap'd permutations.
  const query::BgpEvaluator& evaluator() const { return *evaluator_; }
  const Dictionary& dict() const { return store_->dict(); }
  const store::TripleTable& table() const { return store_->table(); }

  /// The summary of this snapshot's graph, minted on first request (once
  /// per kind, per the once_flag contract above) and memoized for the
  /// snapshot's lifetime. The result lives in a private id space — use it
  /// for pruning verdicts and estimation, not for joining ids against the
  /// serving dictionary.
  StatusOr<const summary::SummaryResult*> Summary(summary::SummaryKind kind);

  /// Stefanoni-style cardinality estimator over the weak summary, for
  /// kSummary planning; built (and its summary minted) on first request.
  StatusOr<const summary::CardinalityEstimator*> Estimator();

  /// One STATS line per summary kind that has completed a mint attempt:
  /// kind name, wall seconds (graph re-intern + summarize), and whether it
  /// succeeded.
  struct MintReport {
    const char* kind;
    bool ok;
    double seconds;
  };
  std::vector<MintReport> MintReports() const;

 private:
  Snapshot() = default;

  struct MintSlot {
    std::once_flag once;
    /// Private re-interned copy of the snapshot's triples; its dictionary
    /// is untouched by any other thread, so summarization can mint freely.
    std::optional<Graph> graph;
    std::optional<summary::SummaryResult> result;
    Status status;
    double seconds = 0.0;
    /// Release-published after the mint attempt finishes; MintReports and
    /// late readers acquire it before touching status/seconds.
    std::atomic<bool> done{false};
  };

  /// Decodes the snapshot's table through the serving dictionary and
  /// re-interns every triple into a fresh graph + dictionary.
  Graph ReinternedGraph() const;

  MintSlot& slot(summary::SummaryKind kind) {
    return mints_[static_cast<size_t>(kind)];
  }

  std::string path_;
  uint64_t epoch_ = 0;
  uint64_t num_triples_ = 0;
  std::unique_ptr<store::MmapStore> store_;
  std::optional<query::BgpEvaluator> evaluator_;

  MintSlot mints_[6];  // indexed by SummaryKind

  std::once_flag estimator_once_;
  std::optional<summary::CardinalityEstimator> estimator_;
  Status estimator_status_;
};

}  // namespace rdfsum::server

#endif  // RDFSUM_SERVER_SNAPSHOT_H_
