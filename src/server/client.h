#ifndef RDFSUM_SERVER_CLIENT_H_
#define RDFSUM_SERVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "server/wire.h"
#include "util/statusor.h"

namespace rdfsum::server {

/// Blocking client for the rdfsum serve wire protocol (docs/PROTOCOL.md).
/// One Client is one connection; it is not thread-safe — the protocol is
/// strictly request/response per connection, so open one Client per thread.
class Client {
 public:
  /// Connects and consumes the server's first frame. That frame is HELLO on
  /// an admitted connection (magic + version checked, epoch recorded) — or
  /// DONE when the server refused admission, in which case the refusal's
  /// classified status (typically kResourceExhausted) comes back verbatim.
  static StatusOr<std::unique_ptr<Client>> Connect(const std::string& host,
                                                   uint16_t port);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Epoch announced in the server's HELLO.
  uint64_t server_epoch() const { return server_epoch_; }

  /// One answer row: the canonical N-Triples rendering of each head term.
  /// Returning false asks the server to CANCEL the query; the stream is
  /// still drained to its DONE, whose status (kCancelled once the server
  /// observes the cancel) is what Query returns.
  using RowFn = std::function<bool(const std::vector<std::string>&)>;

  /// Runs one query; `req.query` is ignored in favor of `text`. Invokes
  /// `on_row` per ROW frame and returns the request's final status — the
  /// server's DONE status, or the local transport/protocol error that ended
  /// the exchange. `rows_out` (optional) receives the number of rows
  /// delivered to `on_row`.
  Status Query(const std::string& text, QueryRequest req, const RowFn& on_row,
               uint64_t* rows_out = nullptr);

  /// Fetches the server's STATS text (key: value lines).
  StatusOr<std::string> Stats();

  /// Asks the server to swap in the image at `path` (empty = re-open the
  /// image it is currently serving); returns the swap's status.
  Status Reload(const std::string& path);

  /// Asks the server to shut down cleanly.
  Status Shutdown();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Reads frames until DONE, forwarding ROW/TEXT to the optional sinks.
  Status DrainToDone(const RowFn* on_row, std::string* text,
                     uint64_t* rows_out);

  int fd_ = -1;
  uint64_t server_epoch_ = 0;
  bool cancel_sent_ = false;
};

}  // namespace rdfsum::server

#endif  // RDFSUM_SERVER_CLIENT_H_
