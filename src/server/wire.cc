#include "server/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rdfsum::server {
namespace {

/// read() until `n` bytes or EOF/error. False on short read.
bool ReadExact(int fd, char* buf, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::read(fd, buf + done, n - done);
    if (r > 0) {
      done += static_cast<size_t>(r);
    } else if (r == 0) {
      return false;  // EOF
    } else if (errno != EINTR) {
      return false;
    }
  }
  return true;
}

/// send() everything. MSG_NOSIGNAL: a peer that hung up must surface as
/// EPIPE -> Status, not kill the process with SIGPIPE.
bool WriteExact(int fd, const char* buf, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::send(fd, buf + done, n - done, MSG_NOSIGNAL);
    if (w > 0) {
      done += static_cast<size_t>(w);
    } else if (w < 0 && errno != EINTR) {
      return false;
    }
  }
  return true;
}

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

Status ReadFrame(int fd, Frame* out) {
  char header[8];
  if (!ReadExact(fd, header, sizeof header)) {
    return Status::IOError("connection closed while reading frame header");
  }
  uint32_t len = LoadU32(header);
  out->type = static_cast<uint8_t>(header[4]);
  if (header[5] != 0 || header[6] != 0 || header[7] != 0) {
    return Status::Corruption("nonzero frame header padding");
  }
  if (len > kMaxFramePayload) {
    return Status::Corruption("frame payload length " + std::to_string(len) +
                              " exceeds limit");
  }
  out->payload.resize(len);
  if (len > 0 && !ReadExact(fd, out->payload.data(), len)) {
    return Status::IOError("connection closed mid-frame");
  }
  return Status::OK();
}

Status WriteFrame(int fd, uint8_t type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload too large");
  }
  char header[8] = {};
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(header, &len, sizeof len);
  header[4] = static_cast<char>(type);
  if (!WriteExact(fd, header, sizeof header)) {
    return Status::IOError("peer closed connection (header write)");
  }
  if (!payload.empty() && !WriteExact(fd, payload.data(), payload.size())) {
    return Status::IOError("peer closed connection (payload write)");
  }
  return Status::OK();
}

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU16(std::string* out, uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof v);
}

void AppendLenBytes(std::string* out, std::string_view bytes) {
  AppendU32(out, static_cast<uint32_t>(bytes.size()));
  out->append(bytes);
}

bool PayloadReader::ReadU8(uint8_t* v) {
  if (data_.size() - pos_ < 1) return false;
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool PayloadReader::ReadU16(uint16_t* v) {
  if (data_.size() - pos_ < sizeof *v) return false;
  std::memcpy(v, data_.data() + pos_, sizeof *v);
  pos_ += sizeof *v;
  return true;
}

bool PayloadReader::ReadU32(uint32_t* v) {
  if (data_.size() - pos_ < sizeof *v) return false;
  std::memcpy(v, data_.data() + pos_, sizeof *v);
  pos_ += sizeof *v;
  return true;
}

bool PayloadReader::ReadU64(uint64_t* v) {
  if (data_.size() - pos_ < sizeof *v) return false;
  std::memcpy(v, data_.data() + pos_, sizeof *v);
  pos_ += sizeof *v;
  return true;
}

bool PayloadReader::ReadLenBytes(std::string* v) {
  uint32_t len = 0;
  if (!ReadU32(&len)) return false;
  if (data_.size() - pos_ < len) return false;
  v->assign(data_.data() + pos_, len);
  pos_ += len;
  return true;
}

std::string EncodeQueryRequest(const QueryRequest& req) {
  std::string p;
  AppendU8(&p, req.planner);
  AppendU8(&p, 0);
  AppendU8(&p, 0);
  AppendU8(&p, 0);
  AppendU64(&p, req.limit);
  AppendU64(&p, req.offset);
  AppendU32(&p, req.timeout_ms);
  AppendU64(&p, req.max_rows);
  AppendLenBytes(&p, req.query);
  AppendU32(&p, req.parallelism);  // protocol 1.1 trailing field
  return p;
}

bool DecodeQueryRequest(std::string_view payload, QueryRequest* out) {
  PayloadReader r(payload);
  uint8_t pad;
  if (!(r.ReadU8(&out->planner) && r.ReadU8(&pad) && r.ReadU8(&pad) &&
        r.ReadU8(&pad) && r.ReadU64(&out->limit) &&
        r.ReadU64(&out->offset) && r.ReadU32(&out->timeout_ms) &&
        r.ReadU64(&out->max_rows) && r.ReadLenBytes(&out->query))) {
    return false;
  }
  // Protocol 1.1 optional trailing field: a 1.0 request ends here.
  out->parallelism = 0;
  if (r.AtEnd()) return true;
  return r.ReadU32(&out->parallelism) && r.AtEnd();
}

std::string EncodeDone(const Status& status, uint64_t rows) {
  std::string p;
  AppendU8(&p, static_cast<uint8_t>(status.code()));
  AppendU8(&p, 0);
  AppendU8(&p, 0);
  AppendU8(&p, 0);
  AppendU64(&p, rows);
  AppendLenBytes(&p, status.message());
  return p;
}

bool DecodeDone(std::string_view payload, DoneReply* out) {
  PayloadReader r(payload);
  uint8_t pad;
  return r.ReadU8(&out->code) && r.ReadU8(&pad) && r.ReadU8(&pad) &&
         r.ReadU8(&pad) && r.ReadU64(&out->rows) &&
         r.ReadLenBytes(&out->message) && r.AtEnd();
}

Status StatusFromWire(uint8_t code, std::string_view message) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(message);
    case Status::Code::kNotFound:
      return Status::NotFound(message);
    case Status::Code::kCorruption:
      return Status::Corruption(message);
    case Status::Code::kIOError:
      return Status::IOError(message);
    case Status::Code::kNotSupported:
      return Status::NotSupported(message);
    case Status::Code::kInternal:
      return Status::Internal(message);
    case Status::Code::kAlreadyExists:
      return Status::AlreadyExists(message);
    case Status::Code::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case Status::Code::kCancelled:
      return Status::Cancelled(message);
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(message);
  }
  return Status::Internal("unknown wire status code " + std::to_string(code) +
                          ": " + std::string(message));
}

}  // namespace rdfsum::server
