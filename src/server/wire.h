#ifndef RDFSUM_SERVER_WIRE_H_
#define RDFSUM_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace rdfsum::server {

/// The rdfsum serve wire protocol (normative spec: docs/PROTOCOL.md): a
/// stream of length-prefixed binary frames over a byte-stream socket. Every
/// frame is an 8-byte header — u32 payload length, u8 frame type, 3 zero
/// bytes — followed by the payload. All integers are little-endian. This
/// header is shared by the server's connection handler and the client
/// library so the two ends can never disagree on the framing.

/// Protocol version. Major must match between client and server (the client
/// rejects a mismatched HELLO); minor is additive-only.
inline constexpr uint16_t kProtocolMajor = 1;
inline constexpr uint16_t kProtocolMinor = 1;  // 1.1 adds QueryRequest.parallelism

/// Magic leading the HELLO payload.
inline constexpr char kHelloMagic[4] = {'R', 'S', 'R', 'V'};

/// Upper bound on a frame payload; a longer length prefix is corruption
/// (the peer is broken or hostile), never an allocation.
inline constexpr uint32_t kMaxFramePayload = 16u << 20;

/// Frame types. Server -> client: kHello (once, on connect), kRow/kText,
/// and kDone (terminates every request). Client -> server: kQuery, kStats,
/// kReload, kShutdown, kCancel. Values are wire-stable; add, never renumber.
inline constexpr uint8_t kFrameHello = 0x01;
inline constexpr uint8_t kFrameQuery = 0x10;
inline constexpr uint8_t kFrameStats = 0x11;
inline constexpr uint8_t kFrameReload = 0x12;
inline constexpr uint8_t kFrameShutdown = 0x13;
inline constexpr uint8_t kFrameCancel = 0x14;
inline constexpr uint8_t kFrameRow = 0x20;
inline constexpr uint8_t kFrameDone = 0x21;
inline constexpr uint8_t kFrameText = 0x22;

struct Frame {
  uint8_t type = 0;
  std::string payload;
};

/// Blocking exact-read of one frame. kIOError on EOF/reset mid-frame,
/// kCorruption on an over-limit length prefix or nonzero header padding.
Status ReadFrame(int fd, Frame* out);

/// Blocking write of one frame (header + payload). kInvalidArgument when
/// the payload exceeds kMaxFramePayload, kIOError when the peer is gone.
Status WriteFrame(int fd, uint8_t type, std::string_view payload);

// ---- payload building / parsing ---------------------------------------

void AppendU8(std::string* out, uint8_t v);
void AppendU16(std::string* out, uint16_t v);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
/// u32 length followed by the bytes.
void AppendLenBytes(std::string* out, std::string_view bytes);

/// Bounds-checked forward reader over a frame payload. Every Read* returns
/// false on underrun instead of reading past the end — a malformed payload
/// is a protocol error the caller reports, never UB.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : data_(payload) {}

  bool ReadU8(uint8_t* v);
  bool ReadU16(uint16_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  /// Reads a u32 length prefix then that many bytes.
  bool ReadLenBytes(std::string* v);

  /// True when the whole payload was consumed — trailing junk is malformed.
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// ---- request / response payloads ---------------------------------------

/// kFrameQuery payload. Zero means "server default" for every limit field.
struct QueryRequest {
  uint8_t planner = 1;  // 0 naive, 1 greedy, 2 summary
  uint64_t limit = 0;   // distinct rows after dedup; 0 = unlimited
  uint64_t offset = 0;  // distinct rows skipped before the first emitted
  uint32_t timeout_ms = 0;
  uint64_t max_rows = 0;
  std::string query;  // SPARQL text
  /// Requested intra-query fan-out (protocol 1.1, optional trailing field):
  /// 0 = server default, 1 = sequential, k = k morsel workers (the server
  /// clamps to its max and admission-controls the extra slots). A 1.0
  /// client simply omits it; the server reads 0.
  uint32_t parallelism = 0;
};

std::string EncodeQueryRequest(const QueryRequest& req);
bool DecodeQueryRequest(std::string_view payload, QueryRequest* out);

/// kFrameDone payload: the request's final Status plus the number of row
/// frames that preceded it.
struct DoneReply {
  uint8_t code = 0;  // static_cast<uint8_t>(Status::Code); wire-stable
  uint64_t rows = 0;
  std::string message;
};

std::string EncodeDone(const Status& status, uint64_t rows);
bool DecodeDone(std::string_view payload, DoneReply* out);

/// Reconstructs a Status from a DONE frame. Unknown codes map to kInternal
/// (a newer server may speak codes this client predates).
Status StatusFromWire(uint8_t code, std::string_view message);

}  // namespace rdfsum::server

#endif  // RDFSUM_SERVER_WIRE_H_
