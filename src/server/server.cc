#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

#include "query/bgp.h"
#include "query/evaluator.h"
#include "query/sparql_parser.h"
#include "server/wire.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace rdfsum::server {
namespace {

/// Rows drained between peeks at the socket for a CANCEL frame. Small
/// enough that a cancel lands within a few frames, large enough that the
/// poll() never shows on a throughput profile.
constexpr uint64_t kCancelPollInterval = 64;

std::string EncodeHello(uint64_t epoch) {
  std::string p;
  p.append(kHelloMagic, sizeof kHelloMagic);
  AppendU16(&p, kProtocolMajor);
  AppendU16(&p, kProtocolMinor);
  AppendU64(&p, epoch);
  return p;
}

/// Encodes one answer row: u32 column count, then each term's canonical
/// N-Triples rendering as len-bytes. The rendering is the same string the
/// CLI prints and the dictionary keys on, which is what makes the
/// served-vs-local byte-identity test in tests/server_test.cc meaningful.
std::string EncodeRow(const query::Row& row) {
  std::string p;
  AppendU32(&p, static_cast<uint32_t>(row.size()));
  for (const Term& t : row) AppendLenBytes(&p, t.ToNTriples());
  return p;
}

bool PlannerFromWire(uint8_t v, query::PlannerMode* mode) {
  switch (v) {
    case 0:
      *mode = query::PlannerMode::kNaive;
      return true;
    case 1:
      *mode = query::PlannerMode::kGreedy;
      return true;
    case 2:
      *mode = query::PlannerMode::kSummary;
      return true;
  }
  return false;
}

}  // namespace

Server::~Server() {
  Stop();
  Wait();
}

Status Server::Start(const std::string& image_path,
                     const ServerOptions& options) {
  options_ = options;
  if (options_.num_workers == 0) {
    return Status::InvalidArgument("serve: num_workers must be >= 1");
  }
  plan_cache_ = std::make_unique<PlanCache>(
      options_.plan_cache ? options_.plan_cache_capacity : 0);
  spare_parallel_slots_.store(options_.num_workers,
                              std::memory_order_relaxed);

  auto snap = Snapshot::Open(image_path, 1);
  if (!snap.ok()) return snap.status();
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snap).value();
  }
  epoch_.store(1, std::memory_order_relaxed);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("serve: bad listen address " +
                                   options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    Status s = Status::IOError(std::string("bind/listen ") + options_.host +
                               ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  ::fcntl(listen_fd_, F_SETFL, O_NONBLOCK);

  stop_.store(false, std::memory_order_release);
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  workers_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&Server::WorkerLoop, this);
  }
  return Status::OK();
}

void Server::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int n = ::poll(&pfd, 1, 100);
    if (n <= 0) continue;  // timeout or EINTR: re-check stop_
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;  // raced another wakeup / transient error
    // Request/response protocol with many small frames: Nagle + delayed
    // ACK would add ~40ms stalls per exchange, so always disable it.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    Status fp = RDFSUM_FAILPOINT_STATUS("serve:accept");
    if (!fp.ok()) {
      // Injected accept-path fault: refuse this connection cleanly (the
      // client sees a classified DONE, never a hang) and keep serving.
      WriteFrame(fd, kFrameDone, EncodeDone(fp, 0)).IgnoreError();
      ::close(fd);
      continue;
    }

    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (pending_.size() < options_.queue_depth) {
        pending_.push_back(fd);
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
    } else {
      admission_rejected_.fetch_add(1, std::memory_order_relaxed);
      WriteFrame(fd, kFrameDone,
                 EncodeDone(Status::ResourceExhausted(
                                "server at capacity: connection queue full"),
                            0))
          .IgnoreError();
      ::close(fd);
    }
  }
}

void Server::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (!pending_.empty()) {
        fd = pending_.front();
        pending_.pop_front();
      } else if (stop_.load(std::memory_order_acquire)) {
        return;
      }
    }
    if (fd >= 0) HandleConnection(fd);
  }
}

void Server::HandleConnection(int fd) {
  if (!WriteFrame(fd, kFrameHello,
                  EncodeHello(epoch_.load(std::memory_order_relaxed)))
           .ok()) {
    ::close(fd);
    return;
  }
  for (;;) {
    // Wait for the next request with a bounded poll instead of a blocking
    // read: an idle connection must notice Stop() (a worker parked in
    // read() would make Wait() hang on a client that never disconnects).
    pollfd pfd{fd, POLLIN, 0};
    int n = ::poll(&pfd, 1, 100);
    if (stop_.load(std::memory_order_acquire)) break;
    if (n <= 0) continue;  // timeout or EINTR: re-check stop_
    Frame frame;
    if (!ReadFrame(fd, &frame).ok()) break;  // peer gone or garbage framing
    switch (frame.type) {
      case kFrameQuery:
        if (!HandleQuery(fd, frame.payload)) {
          ::close(fd);
          return;
        }
        continue;
      case kFrameStats:
        if (!WriteFrame(fd, kFrameText, StatsText()).ok() ||
            !WriteFrame(fd, kFrameDone, EncodeDone(Status::OK(), 0)).ok()) {
          ::close(fd);
          return;
        }
        continue;
      case kFrameReload: {
        PayloadReader r(frame.payload);
        std::string path;
        Status s = (r.ReadLenBytes(&path) && r.AtEnd())
                       ? Reload(path)
                       : Status::Corruption("malformed RELOAD payload");
        if (!WriteFrame(fd, kFrameDone, EncodeDone(s, 0)).ok()) {
          ::close(fd);
          return;
        }
        continue;
      }
      case kFrameShutdown:
        WriteFrame(fd, kFrameDone, EncodeDone(Status::OK(), 0)).IgnoreError();
        ::close(fd);
        Stop();
        return;
      case kFrameCancel:
        continue;  // no query in flight; nothing to cancel
      default: {
        Status s = Status::InvalidArgument(
            "unknown frame type " + std::to_string(frame.type));
        WriteFrame(fd, kFrameDone, EncodeDone(s, 0)).IgnoreError();
        ::close(fd);
        return;
      }
    }
  }
  ::close(fd);
}

bool Server::HandleQuery(int fd, const std::string& payload) {
  QueryRequest req;
  if (!DecodeQueryRequest(payload, &req)) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    WriteFrame(fd, kFrameDone,
               EncodeDone(Status::Corruption("malformed QUERY payload"), 0))
        .IgnoreError();
    return false;
  }
  query::PlannerMode mode;
  if (!PlannerFromWire(req.planner, &mode)) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return WriteFrame(fd, kFrameDone,
                      EncodeDone(Status::InvalidArgument(
                                     "unknown planner " +
                                     std::to_string(req.planner)),
                                 0))
        .ok();
  }

  // Pin this request's epoch: the shared_ptr copy is the whole drain
  // invariant — a concurrent Reload() swaps the server's pointer, not ours.
  std::shared_ptr<Snapshot> snap = snapshot();

  Timer phase;
  auto parsed = query::ParseSparql(req.query);
  parse_phase_.Record(static_cast<uint64_t>(phase.ElapsedMicros()));
  if (!parsed.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return WriteFrame(fd, kFrameDone, EncodeDone(parsed.status(), 0)).ok();
  }
  const query::BgpQuery& q = *parsed;

  phase.Reset();
  query::QueryPlan plan;
  std::string cache_key;
  bool cached = false;
  if (plan_cache_->capacity() > 0) {
    cache_key = PlanCache::Key(query::NormalizedBgpShape(q), mode);
    query::PlanSkeleton skeleton;
    if (plan_cache_->Lookup(cache_key, &skeleton)) {
      plan = query::PlanFromSkeleton(q, snap->dict(), skeleton);
      cached = true;
    }
  }
  if (!cached) {
    const summary::CardinalityEstimator* estimator = nullptr;
    if (mode == query::PlannerMode::kSummary) {
      // Estimator failure degrades to greedy-equivalent planning (the
      // planner falls back when estimator == nullptr); it never fails the
      // query.
      auto est = snap->Estimator();
      if (est.ok()) estimator = *est;
    }
    plan = query::BuildQueryPlan(q, snap->dict(), snap->evaluator().table(),
                                 mode, estimator);
    if (plan_cache_->capacity() > 0) {
      plan_cache_->Insert(cache_key, query::SkeletonOf(plan));
    }
  }
  plan_phase_.Record(static_cast<uint64_t>(phase.ElapsedMicros()));

  util::ExecContext::Limits limits = options_.default_limits;
  if (req.timeout_ms > 0) limits.timeout_ms = req.timeout_ms;
  if (req.max_rows > 0) limits.max_rows = req.max_rows;
  util::ExecContext exec(limits);

  query::CursorOptions copts;
  if (req.limit > 0) copts.limit = req.limit;
  copts.offset = req.offset;
  copts.exec = &exec;

  // Resolve the request's fan-out, then admission-control it: a k-way
  // query needs k-1 extra slots on top of the worker thread it already
  // holds; it takes what the pool has (possibly none — sequential) and
  // returns the slots after the drain. This bounds in-flight query
  // threads without ever queueing or rejecting a parallel request.
  uint32_t resolved = req.parallelism != 0 ? req.parallelism
                                           : options_.default_parallelism;
  if (resolved == 0) {
    resolved = std::max(1u, std::thread::hardware_concurrency());
  }
  if (options_.max_parallelism > 0) {
    resolved = std::min(resolved, options_.max_parallelism);
  }
  uint32_t extra_slots = 0;
  if (resolved > 1) {
    const uint32_t want = resolved - 1;
    uint32_t avail = spare_parallel_slots_.load(std::memory_order_relaxed);
    while (true) {
      const uint32_t take = std::min(want, avail);
      if (take == 0) break;
      if (spare_parallel_slots_.compare_exchange_weak(
              avail, avail - take, std::memory_order_acq_rel)) {
        extra_slots = take;
        break;
      }
    }
    if (extra_slots < want) {
      parallel_slots_trimmed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (extra_slots > 0) {
      parallel_queries_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  copts.parallelism = 1 + extra_slots;

  phase.Reset();
  auto cursor = snap->evaluator().Open(q, plan, copts);
  if (!cursor.ok()) {
    if (extra_slots > 0) {
      spare_parallel_slots_.fetch_add(extra_slots,
                                      std::memory_order_relaxed);
    }
    exec_phase_.Record(static_cast<uint64_t>(phase.ElapsedMicros()));
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return WriteFrame(fd, kFrameDone, EncodeDone(cursor.status(), 0)).ok();
  }

  uint64_t rows_sent = 0;
  bool peer_ok = true;
  query::IdRow row;
  while ((*cursor)->Next(&row)) {
    if (!WriteFrame(fd, kFrameRow, EncodeRow(snap->evaluator().Decode(row)))
             .ok()) {
      peer_ok = false;
      break;
    }
    ++rows_sent;
    if (rows_sent % kCancelPollInterval == 0) {
      // A client that wants out sends CANCEL mid-stream; a vanished client
      // shows up as readable-EOF. Either way, stop pulling.
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, 0) > 0) {
        Frame in;
        if (!ReadFrame(fd, &in).ok() || in.type == kFrameCancel) {
          exec.Cancel();
        }
      }
    }
  }
  Status result = (*cursor)->status();
  cursor->reset();  // join any in-flight morsels before releasing slots
  if (extra_slots > 0) {
    spare_parallel_slots_.fetch_add(extra_slots, std::memory_order_relaxed);
  }
  exec_phase_.Record(static_cast<uint64_t>(phase.ElapsedMicros()));
  if (result.ok()) {
    queries_ok_.fetch_add(1, std::memory_order_relaxed);
  } else {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!peer_ok) return false;
  return WriteFrame(fd, kFrameDone, EncodeDone(result, rows_sent)).ok();
}

Status Server::Reload(const std::string& path) {
  RDFSUM_FAILPOINT("serve:swap");
  std::string target = path;
  if (target.empty()) target = snapshot()->path();
  uint64_t next_epoch = epoch_.load(std::memory_order_relaxed) + 1;
  auto snap = Snapshot::Open(target, next_epoch);
  if (!snap.ok()) return snap.status();
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snap).value();
  }
  epoch_.store(next_epoch, std::memory_order_relaxed);
  // Skeletons were picked against the old image's statistics; they would
  // still be *correct* (results are plan-invariant) but possibly slow, and
  // "correct but quietly mis-tuned forever" is the wrong failure mode.
  plan_cache_->Clear();
  reloads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void Server::Stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  queue_cv_.notify_all();
}

void Server::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  std::deque<int> orphans;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    orphans.swap(pending_);
  }
  for (int fd : orphans) {
    WriteFrame(fd, kFrameDone,
               EncodeDone(Status::Cancelled("server shutting down"), 0))
        .IgnoreError();
    ::close(fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::shared_ptr<Snapshot> Server::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

std::string Server::StatsText() const {
  std::shared_ptr<Snapshot> snap = snapshot();
  std::ostringstream out;
  out << "epoch: " << snap->epoch() << "\n";
  out << "image: " << snap->path() << "\n";
  out << "triples: " << snap->num_triples() << "\n";
  out << "reloads: " << reloads_.load(std::memory_order_relaxed) << "\n";
  out << "queries_ok: " << queries_ok_.load(std::memory_order_relaxed)
      << "\n";
  out << "queries_failed: " << queries_failed_.load(std::memory_order_relaxed)
      << "\n";
  out << "admission_rejected: "
      << admission_rejected_.load(std::memory_order_relaxed) << "\n";
  out << "parallel_queries: "
      << parallel_queries_.load(std::memory_order_relaxed) << "\n";
  out << "parallel_slots_trimmed: "
      << parallel_slots_trimmed_.load(std::memory_order_relaxed) << "\n";
  out << "parallel_slots_free: "
      << spare_parallel_slots_.load(std::memory_order_relaxed) << "\n";
  out << "plan_cache_capacity: " << plan_cache_->capacity() << "\n";
  out << "plan_cache_size: " << plan_cache_->size() << "\n";
  out << "plan_cache_hits: " << plan_cache_->hits() << "\n";
  out << "plan_cache_misses: " << plan_cache_->misses() << "\n";
  const struct {
    const char* name;
    const util::PhaseCounter& c;
  } phases[] = {{"parse", parse_phase_},
                {"plan", plan_phase_},
                {"exec", exec_phase_}};
  for (const auto& p : phases) {
    out << "phase_" << p.name << "_count: " << p.c.count() << "\n";
    out << "phase_" << p.name << "_total_us: " << p.c.total_us() << "\n";
    out << "phase_" << p.name << "_mean_us: " << p.c.mean_us() << "\n";
    out << "phase_" << p.name << "_max_us: " << p.c.max_us() << "\n";
  }
  for (const Snapshot::MintReport& m : snap->MintReports()) {
    out << "summary_mint_" << m.kind << ": "
        << (m.ok ? "ok" : "failed") << " " << m.seconds << "s\n";
  }
  return out.str();
}

}  // namespace rdfsum::server
