#include "server/plan_cache.h"

namespace rdfsum::server {

std::string PlanCache::Key(const std::string& shape,
                           query::PlannerMode mode) {
  std::string key = shape;
  key.push_back('|');
  key.append(query::PlannerModeName(mode));
  return key;
}

bool PlanCache::Lookup(const std::string& key, query::PlanSkeleton* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void PlanCache::Insert(const std::string& key, query::PlanSkeleton skeleton) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(skeleton);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(skeleton));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace rdfsum::server
