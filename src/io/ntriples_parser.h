#ifndef RDFSUM_IO_NTRIPLES_PARSER_H_
#define RDFSUM_IO_NTRIPLES_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/graph.h"
#include "util/exec_context.h"
#include "util/status.h"
#include "util/statusor.h"

namespace rdfsum::io {

/// Parsing knobs.
struct ParseOptions {
  /// In strict mode any malformed line aborts with InvalidArgument; otherwise
  /// malformed lines are counted and skipped (useful for crawled data).
  bool strict = true;
  /// 0 = unlimited. A line longer than this is malformed without being
  /// parsed — the recovery guard against a corrupt dump whose missing
  /// newline turns the rest of the file into one multi-gigabyte "line".
  uint64_t max_line_bytes = 0;
  /// 0 = unlimited. Cap on one decoded term (lexical + datatype + language
  /// bytes); an oversized term makes the line malformed.
  uint64_t max_term_bytes = 0;
  /// Optional governance: polled between lines; a tripped deadline or
  /// cancellation aborts the parse with the context's status (partial
  /// triples already added to the graph stay — callers discard the graph).
  util::ExecContext* exec = nullptr;
  /// Parse worker threads: 1 = the sequential path (default), 0 = all
  /// hardware cores, N = exactly N (clamped by util::ResolveThreadCount).
  /// With more than one thread the input is chunked on line boundaries,
  /// chunks are parsed into per-chunk staging buffers (local dictionary +
  /// staged triples) in parallel, and a deterministic merge pass interns
  /// the staged terms in stream order — the resulting graph, dictionary id
  /// assignment, stats, and diagnostics are byte-identical to the
  /// sequential parse at every thread count (invariants in
  /// src/io/README.md). Each worker polls `exec` per 256 lines.
  uint32_t num_threads = 1;
};

/// Counters filled by the parser.
struct ParseStats {
  /// At most this many line-numbered diagnostics are retained per parse;
  /// the rest only bump `skipped`.
  static constexpr size_t kMaxDiagnostics = 20;

  uint64_t lines = 0;
  uint64_t triples = 0;     // triples successfully added (before dedup)
  uint64_t duplicates = 0;  // triples already present in the graph
  uint64_t skipped = 0;     // malformed lines skipped (strict = false)
  /// Line-numbered reasons for skipped lines ("line 17: unterminated IRI"),
  /// capped at kMaxDiagnostics. Strict mode reports the first failure in
  /// the returned Status instead.
  std::vector<std::string> diagnostics;
  /// Phase-time breakdown of the load. On the parallel path `parse_seconds`
  /// is the chunk-parse fan-out wall time and `intern_seconds` the
  /// deterministic dictionary-merge + graph-replay pass; the sequential
  /// path interleaves interning with parsing, so everything lands in
  /// `parse_seconds` and `intern_seconds` stays 0.
  double parse_seconds = 0.0;
  double intern_seconds = 0.0;
  /// Chunks the input was split into (1 on the sequential path).
  uint32_t chunks = 1;
};

/// A line-oriented N-Triples 1.1 parser (the role raptor/serd/Jena play for
/// the paper's prototype; see DESIGN.md §5 on this substitution).
///
/// Supported term forms: <iri>, _:label, "literal", "literal"@lang,
/// "literal"^^<datatype>, with \t \b \n \r \f \" \' \\ \uXXXX \UXXXXXXXX
/// escapes in literals and \uXXXX escapes in IRIs. Comment lines (#) and
/// blank lines are ignored.
class NTriplesParser {
 public:
  /// Parses all lines of `text` into `graph`. Pre-sizes the graph's triple
  /// set and dictionary from the input's line count so bulk loads don't
  /// rehash the open-addressing index repeatedly.
  static Status ParseString(std::string_view text, Graph* graph,
                            ParseStats* stats = nullptr,
                            const ParseOptions& options = {});

  /// Parses the file at `path` into `graph` (buffered through ParseString,
  /// inheriting its size-based pre-reserve).
  static Status ParseFile(const std::string& path, Graph* graph,
                          ParseStats* stats = nullptr,
                          const ParseOptions& options = {});

  /// Parses a single term serialization, e.g. `<http://a>` or `"x"@en`.
  /// Exposed for tests and for the SPARQL parser, which reuses it.
  static StatusOr<Term> ParseTerm(std::string_view text);
};

}  // namespace rdfsum::io

#endif  // RDFSUM_IO_NTRIPLES_PARSER_H_
