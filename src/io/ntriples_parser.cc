#include "io/ntriples_parser.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace rdfsum::io {
namespace {

bool IsWs(char c) { return c == ' ' || c == '\t'; }

void SkipWs(std::string_view text, size_t& pos) {
  while (pos < text.size() && IsWs(text[pos])) ++pos;
}

/// Appends the UTF-8 encoding of `cp` to `out`; returns false for invalid
/// code points.
bool AppendUtf8(uint32_t cp, std::string* out) {
  if (cp <= 0x7F) {
    out->push_back(static_cast<char>(cp));
  } else if (cp <= 0x7FF) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0xFFFF) {
    if (cp >= 0xD800 && cp <= 0xDFFF) return false;  // surrogate
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0x10FFFF) {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    return false;
  }
  return true;
}

bool ParseHex(std::string_view text, size_t pos, size_t len, uint32_t* out) {
  if (pos + len > text.size()) return false;
  uint32_t value = 0;
  for (size_t i = 0; i < len; ++i) {
    char c = text[pos + i];
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<uint32_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') value |= static_cast<uint32_t>(c - 'A' + 10);
    else return false;
  }
  *out = value;
  return true;
}

/// Decodes escapes valid in both IRIs and literals; advances pos past the
/// escape sequence (pos initially points at the backslash).
Status DecodeEscape(std::string_view text, size_t& pos, std::string* out) {
  if (pos + 1 >= text.size()) {
    return Status::InvalidArgument("dangling backslash");
  }
  char c = text[pos + 1];
  switch (c) {
    case 't': out->push_back('\t'); pos += 2; return Status::OK();
    case 'b': out->push_back('\b'); pos += 2; return Status::OK();
    case 'n': out->push_back('\n'); pos += 2; return Status::OK();
    case 'r': out->push_back('\r'); pos += 2; return Status::OK();
    case 'f': out->push_back('\f'); pos += 2; return Status::OK();
    case '"': out->push_back('"'); pos += 2; return Status::OK();
    case '\'': out->push_back('\''); pos += 2; return Status::OK();
    case '\\': out->push_back('\\'); pos += 2; return Status::OK();
    case 'u': {
      uint32_t cp = 0;
      if (!ParseHex(text, pos + 2, 4, &cp) || !AppendUtf8(cp, out)) {
        return Status::InvalidArgument("bad \\u escape");
      }
      pos += 6;
      return Status::OK();
    }
    case 'U': {
      uint32_t cp = 0;
      if (!ParseHex(text, pos + 2, 8, &cp) || !AppendUtf8(cp, out)) {
        return Status::InvalidArgument("bad \\U escape");
      }
      pos += 10;
      return Status::OK();
    }
    default:
      return Status::InvalidArgument(std::string("unknown escape \\") + c);
  }
}

StatusOr<Term> ParseIriAt(std::string_view text, size_t& pos) {
  // text[pos] == '<'
  ++pos;
  std::string iri;
  while (pos < text.size()) {
    char c = text[pos];
    if (c == '>') {
      ++pos;
      if (iri.empty()) return Status::InvalidArgument("empty IRI");
      return Term::Iri(iri);
    }
    if (c == '\\') {
      RDFSUM_RETURN_IF_ERROR(DecodeEscape(text, pos, &iri));
      continue;
    }
    if (c == ' ' || c == '<' || c == '"' || c == '{' || c == '}' ||
        c == '|' || c == '^' || c == '`') {
      return Status::InvalidArgument("illegal character in IRI");
    }
    iri.push_back(c);
    ++pos;
  }
  return Status::InvalidArgument("unterminated IRI");
}

StatusOr<Term> ParseBlankAt(std::string_view text, size_t& pos) {
  // text[pos..pos+1] == "_:"
  pos += 2;
  std::string label;
  while (pos < text.size()) {
    char c = text[pos];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
        c == '.') {
      label.push_back(c);
      ++pos;
    } else {
      break;
    }
  }
  // A trailing '.' belongs to the statement terminator, not the label.
  while (!label.empty() && label.back() == '.') {
    label.pop_back();
    --pos;
  }
  if (label.empty()) return Status::InvalidArgument("empty blank node label");
  return Term::Blank(label);
}

StatusOr<Term> ParseLiteralAt(std::string_view text, size_t& pos) {
  // text[pos] == '"'
  ++pos;
  std::string lex;
  bool closed = false;
  while (pos < text.size()) {
    char c = text[pos];
    if (c == '"') {
      ++pos;
      closed = true;
      break;
    }
    if (c == '\\') {
      RDFSUM_RETURN_IF_ERROR(DecodeEscape(text, pos, &lex));
      continue;
    }
    lex.push_back(c);
    ++pos;
  }
  if (!closed) return Status::InvalidArgument("unterminated literal");
  if (pos < text.size() && text[pos] == '@') {
    ++pos;
    std::string lang;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '-')) {
      lang.push_back(text[pos]);
      ++pos;
    }
    if (lang.empty()) return Status::InvalidArgument("empty language tag");
    return Term::LangLiteral(lex, lang);
  }
  if (pos + 1 < text.size() && text[pos] == '^' && text[pos + 1] == '^') {
    pos += 2;
    if (pos >= text.size() || text[pos] != '<') {
      return Status::InvalidArgument("datatype must be an IRI");
    }
    auto dt = ParseIriAt(text, pos);
    if (!dt.ok()) return dt.status();
    return Term::TypedLiteral(lex, dt->lexical);
  }
  return Term::Literal(lex);
}

StatusOr<Term> ParseTermAt(std::string_view text, size_t& pos) {
  SkipWs(text, pos);
  if (pos >= text.size()) return Status::InvalidArgument("expected term");
  char c = text[pos];
  if (c == '<') return ParseIriAt(text, pos);
  if (c == '"') return ParseLiteralAt(text, pos);
  if (c == '_' && pos + 1 < text.size() && text[pos + 1] == ':') {
    return ParseBlankAt(text, pos);
  }
  return Status::InvalidArgument("unrecognized term start: '" +
                                 std::string(1, c) + "'");
}

/// Enforces ParseOptions::max_term_bytes on a decoded term. The line-level
/// max_line_bytes guard bounds how much a single term scan can accumulate,
/// so a post-decode check here is enough.
Status CheckTermSize(const Term& t, const ParseOptions& options) {
  if (options.max_term_bytes == 0) return Status::OK();
  const uint64_t size =
      t.lexical.size() + t.datatype.size() + t.language.size();
  if (size > options.max_term_bytes) {
    return Status::InvalidArgument(
        "term of " + std::to_string(size) + " bytes exceeds max_term_bytes (" +
        std::to_string(options.max_term_bytes) + ")");
  }
  return Status::OK();
}

Status ParseLine(std::string_view line, Graph* graph, ParseStats* stats,
                 const ParseOptions& options) {
  size_t pos = 0;
  auto s = ParseTermAt(line, pos);
  if (!s.ok()) return s.status();
  RDFSUM_RETURN_IF_ERROR(CheckTermSize(*s, options));
  auto p = ParseTermAt(line, pos);
  if (!p.ok()) return p.status();
  if (!p->is_iri()) {
    return Status::InvalidArgument("property must be an IRI");
  }
  RDFSUM_RETURN_IF_ERROR(CheckTermSize(*p, options));
  auto o = ParseTermAt(line, pos);
  if (!o.ok()) return o.status();
  RDFSUM_RETURN_IF_ERROR(CheckTermSize(*o, options));
  if (s->is_literal()) {
    return Status::InvalidArgument("subject must not be a literal");
  }
  SkipWs(line, pos);
  if (pos >= line.size() || line[pos] != '.') {
    return Status::InvalidArgument("missing statement terminator '.'");
  }
  ++pos;
  SkipWs(line, pos);
  if (pos != line.size()) {
    return Status::InvalidArgument("trailing garbage after '.'");
  }
  bool fresh = graph->AddTerms(*s, *p, *o);
  if (stats != nullptr) {
    ++stats->triples;
    if (!fresh) ++stats->duplicates;
  }
  return Status::OK();
}

}  // namespace

StatusOr<Term> NTriplesParser::ParseTerm(std::string_view text) {
  size_t pos = 0;
  auto term = ParseTermAt(text, pos);
  if (!term.ok()) return term;
  SkipWs(text, pos);
  if (pos != text.size()) {
    return Status::InvalidArgument("trailing characters after term");
  }
  return term;
}

Status NTriplesParser::ParseString(std::string_view text, Graph* graph,
                                   ParseStats* stats,
                                   const ParseOptions& options) {
  // Pre-size the triple set and the dictionary from the input size before
  // the Add loop: one line ≈ one triple, and empirically large N-Triples
  // files intern roughly one fresh term per triple (subjects repeat across
  // triples, predicates are few). Without this every large load rehashes the
  // open-addressing index log(n) times; an under-estimate only means a
  // couple of residual doublings.
  const size_t estimated_triples =
      static_cast<size_t>(std::count(text.begin(), text.end(), '\n')) + 1;
  graph->Reserve(graph->NumTriples() + estimated_triples);
  graph->dict().Reserve(graph->dict().size() + estimated_triples);

  size_t start = 0;
  uint64_t line_no = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = end == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, end - start);
    ++line_no;
    if (options.exec != nullptr &&
        (line_no & (util::ExecContext::kCheckInterval - 1)) == 0) {
      RDFSUM_RETURN_IF_ERROR(options.exec->Check());
    }
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    std::string_view stripped = StripWhitespace(line);
    if (stats != nullptr) ++stats->lines;
    if (!stripped.empty() && stripped[0] != '#') {
      Status st;
      if (options.max_line_bytes != 0 && line.size() > options.max_line_bytes) {
        st = Status::InvalidArgument(
            "line of " + std::to_string(line.size()) +
            " bytes exceeds max_line_bytes (" +
            std::to_string(options.max_line_bytes) + ")");
      } else {
        st = ParseLine(stripped, graph, stats, options);
      }
      if (!st.ok()) {
        if (options.strict) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": " + st.message());
        }
        if (stats != nullptr) {
          ++stats->skipped;
          if (stats->diagnostics.size() < ParseStats::kMaxDiagnostics) {
            stats->diagnostics.push_back("line " + std::to_string(line_no) +
                                         ": " + std::string(st.message()));
          }
        }
      }
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return Status::OK();
}

Status NTriplesParser::ParseFile(const std::string& path, Graph* graph,
                                 ParseStats* stats,
                                 const ParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseString(buffer.str(), graph, stats, options);
}

}  // namespace rdfsum::io
