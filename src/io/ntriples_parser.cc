#include "io/ntriples_parser.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <utility>

#include "util/fault_injection.h"
#include "util/parallel_for.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace rdfsum::io {
namespace {

bool IsWs(char c) { return c == ' ' || c == '\t'; }

void SkipWs(std::string_view text, size_t& pos) {
  while (pos < text.size() && IsWs(text[pos])) ++pos;
}

/// Appends the UTF-8 encoding of `cp` to `out`; returns false for invalid
/// code points.
bool AppendUtf8(uint32_t cp, std::string* out) {
  if (cp <= 0x7F) {
    out->push_back(static_cast<char>(cp));
  } else if (cp <= 0x7FF) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0xFFFF) {
    if (cp >= 0xD800 && cp <= 0xDFFF) return false;  // surrogate
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0x10FFFF) {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    return false;
  }
  return true;
}

bool ParseHex(std::string_view text, size_t pos, size_t len, uint32_t* out) {
  if (pos + len > text.size()) return false;
  uint32_t value = 0;
  for (size_t i = 0; i < len; ++i) {
    char c = text[pos + i];
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<uint32_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') value |= static_cast<uint32_t>(c - 'A' + 10);
    else return false;
  }
  *out = value;
  return true;
}

/// Decodes escapes valid in both IRIs and literals; advances pos past the
/// escape sequence (pos initially points at the backslash).
Status DecodeEscape(std::string_view text, size_t& pos, std::string* out) {
  if (pos + 1 >= text.size()) {
    return Status::InvalidArgument("dangling backslash");
  }
  char c = text[pos + 1];
  switch (c) {
    case 't': out->push_back('\t'); pos += 2; return Status::OK();
    case 'b': out->push_back('\b'); pos += 2; return Status::OK();
    case 'n': out->push_back('\n'); pos += 2; return Status::OK();
    case 'r': out->push_back('\r'); pos += 2; return Status::OK();
    case 'f': out->push_back('\f'); pos += 2; return Status::OK();
    case '"': out->push_back('"'); pos += 2; return Status::OK();
    case '\'': out->push_back('\''); pos += 2; return Status::OK();
    case '\\': out->push_back('\\'); pos += 2; return Status::OK();
    case 'u': {
      uint32_t cp = 0;
      if (!ParseHex(text, pos + 2, 4, &cp) || !AppendUtf8(cp, out)) {
        return Status::InvalidArgument("bad \\u escape");
      }
      pos += 6;
      return Status::OK();
    }
    case 'U': {
      uint32_t cp = 0;
      if (!ParseHex(text, pos + 2, 8, &cp) || !AppendUtf8(cp, out)) {
        return Status::InvalidArgument("bad \\U escape");
      }
      pos += 10;
      return Status::OK();
    }
    default:
      return Status::InvalidArgument(std::string("unknown escape \\") + c);
  }
}

StatusOr<Term> ParseIriAt(std::string_view text, size_t& pos) {
  // text[pos] == '<'
  ++pos;
  std::string iri;
  while (pos < text.size()) {
    char c = text[pos];
    if (c == '>') {
      ++pos;
      if (iri.empty()) return Status::InvalidArgument("empty IRI");
      return Term::Iri(iri);
    }
    if (c == '\\') {
      RDFSUM_RETURN_IF_ERROR(DecodeEscape(text, pos, &iri));
      continue;
    }
    if (c == ' ' || c == '<' || c == '"' || c == '{' || c == '}' ||
        c == '|' || c == '^' || c == '`') {
      return Status::InvalidArgument("illegal character in IRI");
    }
    iri.push_back(c);
    ++pos;
  }
  return Status::InvalidArgument("unterminated IRI");
}

StatusOr<Term> ParseBlankAt(std::string_view text, size_t& pos) {
  // text[pos..pos+1] == "_:"
  pos += 2;
  std::string label;
  while (pos < text.size()) {
    char c = text[pos];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
        c == '.') {
      label.push_back(c);
      ++pos;
    } else {
      break;
    }
  }
  // A trailing '.' belongs to the statement terminator, not the label.
  while (!label.empty() && label.back() == '.') {
    label.pop_back();
    --pos;
  }
  if (label.empty()) return Status::InvalidArgument("empty blank node label");
  return Term::Blank(label);
}

StatusOr<Term> ParseLiteralAt(std::string_view text, size_t& pos) {
  // text[pos] == '"'
  ++pos;
  std::string lex;
  bool closed = false;
  while (pos < text.size()) {
    char c = text[pos];
    if (c == '"') {
      ++pos;
      closed = true;
      break;
    }
    if (c == '\\') {
      RDFSUM_RETURN_IF_ERROR(DecodeEscape(text, pos, &lex));
      continue;
    }
    lex.push_back(c);
    ++pos;
  }
  if (!closed) return Status::InvalidArgument("unterminated literal");
  if (pos < text.size() && text[pos] == '@') {
    ++pos;
    std::string lang;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '-')) {
      lang.push_back(text[pos]);
      ++pos;
    }
    if (lang.empty()) return Status::InvalidArgument("empty language tag");
    return Term::LangLiteral(lex, lang);
  }
  if (pos + 1 < text.size() && text[pos] == '^' && text[pos + 1] == '^') {
    pos += 2;
    if (pos >= text.size() || text[pos] != '<') {
      return Status::InvalidArgument("datatype must be an IRI");
    }
    auto dt = ParseIriAt(text, pos);
    if (!dt.ok()) return dt.status();
    return Term::TypedLiteral(lex, dt->lexical);
  }
  return Term::Literal(lex);
}

StatusOr<Term> ParseTermAt(std::string_view text, size_t& pos) {
  SkipWs(text, pos);
  if (pos >= text.size()) return Status::InvalidArgument("expected term");
  char c = text[pos];
  if (c == '<') return ParseIriAt(text, pos);
  if (c == '"') return ParseLiteralAt(text, pos);
  if (c == '_' && pos + 1 < text.size() && text[pos + 1] == ':') {
    return ParseBlankAt(text, pos);
  }
  return Status::InvalidArgument("unrecognized term start: '" +
                                 std::string(1, c) + "'");
}

/// Enforces ParseOptions::max_term_bytes on a decoded term. The line-level
/// max_line_bytes guard bounds how much a single term scan can accumulate,
/// so a post-decode check here is enough.
Status CheckTermSize(const Term& t, const ParseOptions& options) {
  if (options.max_term_bytes == 0) return Status::OK();
  const uint64_t size =
      t.lexical.size() + t.datatype.size() + t.language.size();
  if (size > options.max_term_bytes) {
    return Status::InvalidArgument(
        "term of " + std::to_string(size) + " bytes exceeds max_term_bytes (" +
        std::to_string(options.max_term_bytes) + ")");
  }
  return Status::OK();
}

/// One line-numbered skip reason, chunk-relative (see ChunkParse).
struct ChunkDiag {
  uint64_t line;  // 1-based within the chunk
  std::string message;
};

/// Outcome of the shared per-line driver over one chunk of input. The
/// sequential path runs a single chunk covering the whole text; the parallel
/// path runs one per chunk and merges them in chunk order. All line numbers
/// are chunk-relative (1-based) — the merge offsets them by the preceding
/// chunks' line counts to recover global numbers.
struct ChunkParse {
  uint64_t lines = 0;
  uint64_t triples = 0;
  uint64_t duplicates = 0;  // only the sequential sink can observe these
  uint64_t skipped = 0;
  std::vector<ChunkDiag> diagnostics;  // first kMaxDiagnostics skip reasons
  uint64_t error_line = 0;             // strict-mode failure line; 0 = none
  std::string error_message;
  Status exec_status;  // non-OK when governance tripped mid-chunk
};

/// Parses one statement line and feeds it to `emit(s, p, o) -> fresh`.
template <typename Emit>
Status ParseLine(std::string_view line, const ParseOptions& options,
                 ChunkParse* out, Emit&& emit) {
  size_t pos = 0;
  auto s = ParseTermAt(line, pos);
  if (!s.ok()) return s.status();
  RDFSUM_RETURN_IF_ERROR(CheckTermSize(*s, options));
  auto p = ParseTermAt(line, pos);
  if (!p.ok()) return p.status();
  if (!p->is_iri()) {
    return Status::InvalidArgument("property must be an IRI");
  }
  RDFSUM_RETURN_IF_ERROR(CheckTermSize(*p, options));
  auto o = ParseTermAt(line, pos);
  if (!o.ok()) return o.status();
  RDFSUM_RETURN_IF_ERROR(CheckTermSize(*o, options));
  if (s->is_literal()) {
    return Status::InvalidArgument("subject must not be a literal");
  }
  SkipWs(line, pos);
  if (pos >= line.size() || line[pos] != '.') {
    return Status::InvalidArgument("missing statement terminator '.'");
  }
  ++pos;
  SkipWs(line, pos);
  if (pos != line.size()) {
    return Status::InvalidArgument("trailing garbage after '.'");
  }
  bool fresh = emit(*s, *p, *o);
  ++out->triples;
  if (!fresh) ++out->duplicates;
  return Status::OK();
}

/// The line loop, parameterized over a triple sink: splits `text` on '\n'
/// (a trailing newline yields a final empty line), strips '\r' and
/// surrounding whitespace, skips comments/blanks, enforces max_line_bytes,
/// and polls options.exec every ExecContext::kCheckInterval lines. Stops
/// early on a strict-mode parse failure or a governance trip, leaving the
/// failure in `out`. Chunk views handed to this driver must not carry their
/// trailing chunk-boundary '\n' (the final chunk keeps its tail verbatim),
/// so per-chunk line counts sum exactly to the sequential count.
template <typename Emit>
void ParseChunkLines(std::string_view text, const ParseOptions& options,
                     ChunkParse* out, Emit&& emit) {
  size_t start = 0;
  uint64_t line_no = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = end == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, end - start);
    ++line_no;
    if (options.exec != nullptr &&
        (line_no & (util::ExecContext::kCheckInterval - 1)) == 0) {
      Status st = options.exec->Check();
      if (!st.ok()) {
        out->exec_status = std::move(st);
        return;
      }
    }
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    std::string_view stripped = StripWhitespace(line);
    ++out->lines;
    if (!stripped.empty() && stripped[0] != '#') {
      Status st;
      if (options.max_line_bytes != 0 && line.size() > options.max_line_bytes) {
        st = Status::InvalidArgument(
            "line of " + std::to_string(line.size()) +
            " bytes exceeds max_line_bytes (" +
            std::to_string(options.max_line_bytes) + ")");
      } else {
        st = ParseLine(stripped, options, out, emit);
      }
      if (!st.ok()) {
        if (options.strict) {
          out->error_line = line_no;
          out->error_message = std::string(st.message());
          return;
        }
        ++out->skipped;
        if (out->diagnostics.size() < ParseStats::kMaxDiagnostics) {
          out->diagnostics.push_back({line_no, std::string(st.message())});
        }
      }
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
}

/// Folds one chunk's counters and (offset-fixed) diagnostics into `stats`.
void MergeChunkStats(const ChunkParse& cp, uint64_t line_offset,
                     ParseStats* stats) {
  if (stats == nullptr) return;
  stats->lines += cp.lines;
  stats->triples += cp.triples;
  stats->duplicates += cp.duplicates;
  stats->skipped += cp.skipped;
  for (const ChunkDiag& d : cp.diagnostics) {
    if (stats->diagnostics.size() >= ParseStats::kMaxDiagnostics) break;
    stats->diagnostics.push_back(
        "line " + std::to_string(line_offset + d.line) + ": " + d.message);
  }
}

/// The Status a chunk failure maps to at the ParseString boundary.
Status ChunkFailure(const ChunkParse& cp, uint64_t line_offset) {
  if (!cp.exec_status.ok()) return cp.exec_status;
  return Status::InvalidArgument("line " +
                                 std::to_string(line_offset + cp.error_line) +
                                 ": " + cp.error_message);
}

/// Per-chunk staging state for the parallel path. The chunk-local dictionary
/// assigns dense local ids in the chunk's own first-occurrence order;
/// `hashes[i]` caches HashTerm for local id i+1 so the merge pass never
/// rehashes a term.
struct ChunkStage {
  ChunkParse parse;
  Dictionary dict;
  std::vector<uint64_t> hashes;
  std::vector<Triple> staged;  // local-id triples in line order
  Status inject;               // load:chunk failpoint outcome
};

/// Minimum bytes of input per parse chunk: below this, thread spawn and
/// merge overhead dominate and the sequential path wins. Small enough that
/// multi-threaded tests on few-KB inputs still exercise real chunking.
constexpr size_t kMinChunkBytes = 256;

}  // namespace

StatusOr<Term> NTriplesParser::ParseTerm(std::string_view text) {
  size_t pos = 0;
  auto term = ParseTermAt(text, pos);
  if (!term.ok()) return term;
  SkipWs(text, pos);
  if (pos != text.size()) {
    return Status::InvalidArgument("trailing characters after term");
  }
  return term;
}

Status NTriplesParser::ParseString(std::string_view text, Graph* graph,
                                   ParseStats* stats,
                                   const ParseOptions& options) {
  const uint32_t num_chunks = util::ResolveThreadCount(
      options.num_threads, std::max<uint64_t>(text.size() / kMinChunkBytes, 1));

  if (num_chunks <= 1) {
    // Sequential path: one chunk, terms interned straight into the graph.
    // Pre-size the triple set and the dictionary from the input size before
    // the Add loop: one line ≈ one triple, and empirically large N-Triples
    // files intern roughly one fresh term per triple (subjects repeat across
    // triples, predicates are few). Without this every large load rehashes
    // the open-addressing index log(n) times; an under-estimate only means a
    // couple of residual doublings.
    const size_t estimated_triples =
        static_cast<size_t>(std::count(text.begin(), text.end(), '\n')) + 1;
    graph->Reserve(graph->NumTriples() + estimated_triples);
    graph->dict().Reserve(graph->dict().size() + estimated_triples);

    Timer timer;
    ChunkParse cp;
    ParseChunkLines(text, options, &cp,
                    [graph](const Term& s, const Term& p, const Term& o) {
                      return graph->AddTerms(s, p, o);
                    });
    MergeChunkStats(cp, /*line_offset=*/0, stats);
    if (stats != nullptr) {
      stats->parse_seconds += timer.ElapsedSeconds();
      stats->chunks = 1;
    }
    if (!cp.exec_status.ok() || cp.error_line != 0) {
      return ChunkFailure(cp, /*line_offset=*/0);
    }
    return Status::OK();
  }

  // Parallel path. Chunk boundaries land just after a '\n', so every chunk
  // is a whole number of lines; each worker parses its chunk into a local
  // dictionary + staged triples, and the merge below replays them in chunk
  // order — reproducing the sequential parse byte-for-byte (ids, insertion
  // order, stats, diagnostics). Invariants: src/io/README.md.
  std::vector<std::pair<size_t, size_t>> bounds;
  bounds.reserve(num_chunks);
  const size_t target = text.size() / num_chunks;
  for (size_t begin = 0; begin < text.size();) {
    size_t end = text.size();
    if (bounds.size() + 1 < num_chunks) {
      const size_t probe = begin + target;
      if (probe < text.size()) {
        const size_t nl = text.find('\n', probe);
        end = nl == std::string_view::npos ? text.size() : nl + 1;
      }
    }
    bounds.emplace_back(begin, end);
    begin = end;
  }

  Timer timer;
  std::vector<ChunkStage> stages(bounds.size());
  util::ParallelFor(
      static_cast<uint32_t>(bounds.size()), [&](uint32_t shard) {
        ChunkStage& cs = stages[shard];
        cs.inject = RDFSUM_FAILPOINT_STATUS("load:chunk");
        if (!cs.inject.ok()) return;
        const auto [cb, ce] = bounds[shard];
        // Non-final chunks end with the boundary '\n'; strip it so the
        // uniform split-on-'\n' driver counts exactly this chunk's lines
        // (the final chunk keeps its tail, trailing newline included, to
        // preserve the sequential trailing-empty-line semantics).
        const bool final_chunk = ce == text.size();
        std::string_view view =
            text.substr(cb, ce - cb - (final_chunk ? 0 : 1));
        const size_t estimated =
            static_cast<size_t>(std::count(view.begin(), view.end(), '\n')) +
            1;
        cs.dict.Reserve(estimated);
        cs.hashes.reserve(estimated);
        cs.staged.reserve(estimated);
        ParseChunkLines(
            view, options, &cs.parse,
            [&cs](const Term& s, const Term& p, const Term& o) {
              auto intern = [&cs](const Term& t) {
                const uint64_t h = Dictionary::HashTerm(t);
                TermId id = cs.dict.EncodeHashed(t, h);
                if (id > cs.hashes.size()) cs.hashes.push_back(h);
                return id;
              };
              // Declaration order sequences the interns s, then p, then o —
              // the same local first-occurrence order the sequential
              // AddTerms produces globally.
              TermId s_id = intern(s), p_id = intern(p), o_id = intern(o);
              cs.staged.push_back(Triple{s_id, p_id, o_id});
              return true;  // freshness is resolved at replay
            });
      });
  if (stats != nullptr) {
    stats->parse_seconds += timer.ElapsedSeconds();
    stats->chunks = static_cast<uint32_t>(bounds.size());
  }

  // Fold stats and surface the first failure in chunk (= stream) order;
  // counters of chunks past a failure are discarded, like the sequential
  // parser never reaching those lines. An injected chunk fault precedes its
  // chunk's parse, so it carries no partial counters.
  uint64_t line_offset = 0;
  for (const ChunkStage& cs : stages) {
    if (!cs.inject.ok()) return cs.inject;
    const bool failed = !cs.parse.exec_status.ok() || cs.parse.error_line != 0;
    MergeChunkStats(cs.parse, line_offset, stats);
    if (failed) return ChunkFailure(cs.parse, line_offset);
    line_offset += cs.parse.lines;
  }

  // Deterministic merge: walk chunks in order; the first use of each local
  // id interns its term into the shared dictionary (reusing the cached
  // hash), so final ids are assigned in sequential first-occurrence order.
  RDFSUM_FAILPOINT("load:dict-merge");
  Timer intern_timer;
  size_t staged_total = 0;
  size_t distinct_total = 0;
  for (const ChunkStage& cs : stages) {
    staged_total += cs.staged.size();
    distinct_total += cs.hashes.size();
  }
  graph->Reserve(graph->NumTriples() + staged_total);
  graph->dict().Reserve(graph->dict().size() + distinct_total);

  Dictionary& dict = graph->dict();
  uint64_t replayed = 0;
  uint64_t duplicates = 0;
  std::vector<TermId> remap;
  for (ChunkStage& cs : stages) {
    remap.assign(cs.hashes.size() + 1, kInvalidTermId);
    auto global_id = [&](TermId local) {
      TermId& slot = remap[local];
      if (slot == kInvalidTermId) {
        slot = dict.EncodeHashed(cs.dict.Decode(local), cs.hashes[local - 1]);
      }
      return slot;
    };
    for (const Triple& t : cs.staged) {
      if (options.exec != nullptr &&
          (++replayed & (util::ExecContext::kCheckInterval - 1)) == 0) {
        RDFSUM_RETURN_IF_ERROR(options.exec->Check());
      }
      // Braced init sequences the three remaps left to right (s, p, o).
      Triple global{global_id(t.s), global_id(t.p), global_id(t.o)};
      if (!graph->Add(global)) ++duplicates;
    }
    cs.staged = std::vector<Triple>();  // release as we go
  }
  if (stats != nullptr) {
    stats->duplicates += duplicates;
    stats->intern_seconds += intern_timer.ElapsedSeconds();
  }
  return Status::OK();
}

Status NTriplesParser::ParseFile(const std::string& path, Graph* graph,
                                 ParseStats* stats,
                                 const ParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::IOError("cannot stat " + path);
  in.seekg(0);
  std::string buffer(static_cast<size_t>(size), '\0');
  if (size > 0 && !in.read(buffer.data(), size)) {
    return Status::IOError("cannot read " + path);
  }
  return ParseString(buffer, graph, stats, options);
}

}  // namespace rdfsum::io
