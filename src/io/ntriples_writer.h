#ifndef RDFSUM_IO_NTRIPLES_WRITER_H_
#define RDFSUM_IO_NTRIPLES_WRITER_H_

#include <ostream>
#include <string>

#include "rdf/graph.h"
#include "util/status.h"

namespace rdfsum::io {

/// Serializes a graph in N-Triples 1.1. Output order is D, then T, then S
/// component; round-trips through NTriplesParser.
class NTriplesWriter {
 public:
  static void Write(const Graph& graph, std::ostream& os);
  static std::string ToString(const Graph& graph);
  static Status WriteFile(const Graph& graph, const std::string& path);
};

}  // namespace rdfsum::io

#endif  // RDFSUM_IO_NTRIPLES_WRITER_H_
