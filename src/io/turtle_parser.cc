#include "io/turtle_parser.h"

#include <cctype>
#include <fstream>
#include <unordered_map>
#include <vector>

#include "rdf/vocabulary.h"
#include "util/statusor.h"
#include "util/string_util.h"

namespace rdfsum::io {
namespace {

constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
constexpr std::string_view kXsdDecimal =
    "http://www.w3.org/2001/XMLSchema#decimal";
constexpr std::string_view kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";

class Parser {
 public:
  Parser(std::string_view text, Graph* graph, TurtleParseStats* stats,
         const TurtleParseOptions& options)
      : text_(text), graph_(graph), stats_(stats), options_(options) {}

  Status Run() {
    while (true) {
      SkipWsAndComments();
      if (pos_ >= text_.size()) return Status::OK();
      ++statements_;
      if (options_.exec != nullptr &&
          (statements_ & (util::ExecContext::kCheckInterval - 1)) == 0) {
        RDFSUM_RETURN_IF_ERROR(options_.exec->Check());
      }
      statement_start_ = pos_;
      statement_line_ = line_;
      Status st = ParseStatement();
      if (!st.ok()) {
        if (options_.strict) return st;
        // Lenient mode: count + record the failure, then resynchronize at
        // the next top-level '.' — triples the statement emitted before its
        // failure point stay, like the N-Triples parser's earlier lines.
        if (stats_ != nullptr) {
          ++stats_->skipped;
          if (stats_->diagnostics.size() < TurtleParseStats::kMaxDiagnostics) {
            std::string msg(st.message());
            // Err() already prefixes the line; NotSupported sites don't.
            if (!StartsWith(msg, "line ")) {
              msg = "line " + std::to_string(statement_line_) + ": " + msg;
            }
            stats_->diagnostics.push_back(std::move(msg));
          }
        }
        RecoverToStatementEnd();
      }
    }
  }

 private:
  // ------------------------------------------------------------- lexing
  void SkipWsAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (c == '\n') ++line_;
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool Eat(char c) {
    SkipWsAndComments();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(const std::string& msg) {
    return Status::InvalidArgument("line " + std::to_string(line_) + ": " +
                                   msg);
  }

  bool EatKeyword(std::string_view kw) {
    SkipWsAndComments();
    if (pos_ + kw.size() > text_.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(kw[i]))) {
        return false;
      }
    }
    // Keyword must not continue as a name.
    size_t end = pos_ + kw.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_' || text_[end] == ':')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  // ------------------------------------------------------------- grammar
  Status ParseStatement() {
    bool at_prefix = EatKeyword("@prefix");
    if (at_prefix || EatKeyword("PREFIX")) {
      RDFSUM_RETURN_IF_ERROR(ParsePrefixDecl());
      // @prefix requires a trailing dot; SPARQL-style PREFIX takes none.
      if (at_prefix && !Eat('.')) return Err("@prefix must end with '.'");
      return Status::OK();
    }
    bool at_base = EatKeyword("@base");
    if (at_base || EatKeyword("BASE")) {
      auto iri = ParseIriRef();
      if (!iri.ok()) return iri.status();
      base_ = iri->lexical;
      if (at_base && !Eat('.')) return Err("@base must end with '.'");
      return Status::OK();
    }
    // subject predicate-object-list '.'
    auto subject = ParseTermChecked(/*allow_literal=*/false);
    if (!subject.ok()) return subject.status();
    RDFSUM_RETURN_IF_ERROR(ParsePredicateObjectList(*subject));
    if (!Eat('.')) return Err("expected '.' at end of statement");
    return Status::OK();
  }

  Status ParsePrefixDecl() {
    SkipWsAndComments();
    std::string label;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == '.')) {
      label.push_back(text_[pos_++]);
    }
    if (!Eat(':')) return Err("expected ':' in prefix declaration");
    auto iri = ParseIriRef();
    if (!iri.ok()) return iri.status();
    prefixes_[label] = iri->lexical;
    if (stats_ != nullptr) ++stats_->prefixes;
    return Status::OK();
  }

  Status ParsePredicateObjectList(const Term& subject) {
    while (true) {
      Term predicate;
      SkipWsAndComments();
      if (EatKeyword("a")) {
        predicate = Term::Iri(vocab::kRdfType);
      } else {
        auto p = ParseTermChecked(/*allow_literal=*/false);
        if (!p.ok()) return p.status();
        if (!p->is_iri()) return Err("predicate must be an IRI");
        predicate = std::move(*p);
      }
      // Object list.
      while (true) {
        auto object = ParseTermChecked(/*allow_literal=*/true);
        if (!object.ok()) return object.status();
        bool fresh = graph_->AddTerms(subject, predicate, *object);
        if (stats_ != nullptr) {
          ++stats_->triples;
          if (!fresh) ++stats_->duplicates;
        }
        if (!Eat(',')) break;
      }
      if (!Eat(';')) break;
      // A dangling ';' before '.' is legal Turtle.
      SkipWsAndComments();
      if (pos_ < text_.size() && text_[pos_] == '.') break;
    }
    return Status::OK();
  }

  /// Best-effort resynchronization after a failed statement: scans to the
  /// next '.' that sits outside <iri> brackets, quoted literals, and
  /// comments, and consumes it. A '.' inside a prefixed name or number can
  /// still end the scan early — the price of recovery without a full parse,
  /// and at worst it costs one extra diagnostic.
  void RecoverToStatementEnd() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '.') {
        ++pos_;
        return;
      }
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '<') {
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '>' &&
               text_[pos_] != '\n') {
          ++pos_;
        }
        if (pos_ < text_.size() && text_[pos_] == '>') ++pos_;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != quote) {
          if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        if (pos_ < text_.size()) ++pos_;
        continue;
      }
      ++pos_;
    }
  }

  // ------------------------------------------------------------- terms
  /// Enforces TurtleParseOptions::max_term_bytes on a decoded term.
  Status CheckTermSize(const Term& t) {
    if (options_.max_term_bytes == 0) return Status::OK();
    const uint64_t size =
        t.lexical.size() + t.datatype.size() + t.language.size();
    if (size > options_.max_term_bytes) {
      return Err("term of " + std::to_string(size) +
                 " bytes exceeds max_term_bytes (" +
                 std::to_string(options_.max_term_bytes) + ")");
    }
    return Status::OK();
  }

  StatusOr<Term> ParseTermChecked(bool allow_literal) {
    // The statement-span guard lives here because every grammar production
    // funnels through term parsing: a runaway statement (missing '.') trips
    // it after at most one term beyond the cap.
    if (options_.max_statement_bytes != 0 &&
        pos_ - statement_start_ > options_.max_statement_bytes) {
      return Err("statement of " + std::to_string(pos_ - statement_start_) +
                 " bytes exceeds max_statement_bytes (" +
                 std::to_string(options_.max_statement_bytes) + ")");
    }
    auto term = ParseTermInner(allow_literal);
    if (!term.ok()) return term;
    RDFSUM_RETURN_IF_ERROR(CheckTermSize(*term));
    return term;
  }

  StatusOr<Term> ParseTermInner(bool allow_literal) {
    SkipWsAndComments();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    if (c == '<') return ParseIriRef();
    if (c == '_') return ParseBlank();
    if (c == '[') {
      ++pos_;
      SkipWsAndComments();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return Term::Blank("anon" + std::to_string(anon_counter_++));
      }
      return Status::NotSupported(
          "blank node property lists [ p o ] are not supported");
    }
    if (c == '(') {
      return Status::NotSupported("RDF collections ( ... ) are not supported");
    }
    if (c == '"' || c == '\'') {
      if (!allow_literal) return Err("literal not allowed here");
      return ParseQuotedLiteral();
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '+' || c == '-') {
      if (!allow_literal) return Err("numeric literal not allowed here");
      return ParseNumericLiteral();
    }
    if (EatKeyword("true")) return Term::TypedLiteral("true", kXsdBoolean);
    if (EatKeyword("false")) return Term::TypedLiteral("false", kXsdBoolean);
    return ParsePrefixedName();
  }

  StatusOr<Term> ParseIriRef() {
    SkipWsAndComments();
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Err("expected IRI");
    }
    ++pos_;
    std::string iri;
    while (pos_ < text_.size() && text_[pos_] != '>') {
      if (text_[pos_] == '\\') {
        // Keep escapes verbatim minus the backslash for \u handling already
        // done by the N-Triples path; here accept the raw character.
        ++pos_;
        if (pos_ >= text_.size()) return Err("dangling escape in IRI");
      }
      iri.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) return Err("unterminated IRI");
    ++pos_;
    // Resolve against @base for relative IRIs (pragmatic concatenation).
    if (!base_.empty() && iri.find(':') == std::string::npos) {
      iri = base_ + iri;
    }
    if (iri.empty()) return Err("empty IRI");
    return Term::Iri(iri);
  }

  StatusOr<Term> ParseBlank() {
    // text_[pos_] == '_'
    if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != ':') {
      return Err("expected blank node label");
    }
    pos_ += 2;
    std::string label;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-')) {
      label.push_back(text_[pos_++]);
    }
    if (label.empty()) return Err("empty blank node label");
    return Term::Blank(label);
  }

  StatusOr<Term> ParseQuotedLiteral() {
    char quote = text_[pos_];
    if (pos_ + 2 < text_.size() && text_[pos_ + 1] == quote &&
        text_[pos_ + 2] == quote) {
      return Status::NotSupported("triple-quoted literals are not supported");
    }
    ++pos_;
    std::string lex;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      char c = text_[pos_];
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Err("dangling escape");
        char e = text_[pos_ + 1];
        switch (e) {
          case 't': lex.push_back('\t'); break;
          case 'n': lex.push_back('\n'); break;
          case 'r': lex.push_back('\r'); break;
          case 'b': lex.push_back('\b'); break;
          case 'f': lex.push_back('\f'); break;
          case '"': lex.push_back('"'); break;
          case '\'': lex.push_back('\''); break;
          case '\\': lex.push_back('\\'); break;
          default:
            return Err(std::string("unknown escape \\") + e);
        }
        pos_ += 2;
        continue;
      }
      if (c == '\n') return Err("newline in single-quoted literal");
      lex.push_back(c);
      ++pos_;
    }
    if (pos_ >= text_.size()) return Err("unterminated literal");
    ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '@') {
      ++pos_;
      std::string lang;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '-')) {
        lang.push_back(text_[pos_++]);
      }
      if (lang.empty()) return Err("empty language tag");
      return Term::LangLiteral(lex, lang);
    }
    if (pos_ + 1 < text_.size() && text_[pos_] == '^' &&
        text_[pos_ + 1] == '^') {
      pos_ += 2;
      SkipWsAndComments();
      StatusOr<Term> dt = text_[pos_] == '<' ? ParseIriRef()
                                             : ParsePrefixedName();
      if (!dt.ok()) return dt.status();
      if (!dt->is_iri()) return Err("datatype must be an IRI");
      return Term::TypedLiteral(lex, dt->lexical);
    }
    return Term::Literal(lex);
  }

  StatusOr<Term> ParseNumericLiteral() {
    std::string digits;
    bool is_decimal = false;
    if (text_[pos_] == '+' || text_[pos_] == '-') {
      digits.push_back(text_[pos_++]);
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.')) {
      if (text_[pos_] == '.') {
        // A '.' not followed by a digit terminates the statement instead.
        if (pos_ + 1 >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
          break;
        }
        is_decimal = true;
      }
      digits.push_back(text_[pos_++]);
    }
    if (digits.empty() || digits == "+" || digits == "-") {
      return Err("malformed numeric literal");
    }
    return Term::TypedLiteral(digits, is_decimal ? kXsdDecimal : kXsdInteger);
  }

  StatusOr<Term> ParsePrefixedName() {
    SkipWsAndComments();
    std::string prefix;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == '.')) {
      prefix.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size() || text_[pos_] != ':') {
      return Err("expected prefixed name, found '" + prefix + "'");
    }
    ++pos_;
    std::string local;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-')) {
      local.push_back(text_[pos_++]);
    }
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Err("undeclared prefix '" + prefix + ":'");
    }
    return Term::Iri(it->second + local);
  }

  std::string_view text_;
  Graph* graph_;
  TurtleParseStats* stats_;
  TurtleParseOptions options_;
  size_t pos_ = 0;
  uint64_t line_ = 1;
  uint64_t statements_ = 0;
  size_t statement_start_ = 0;   // byte offset of the current statement
  uint64_t statement_line_ = 1;  // line it started on, for diagnostics
  uint64_t anon_counter_ = 0;
  std::string base_;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace

Status TurtleParser::ParseString(std::string_view text, Graph* graph,
                                 TurtleParseStats* stats,
                                 const TurtleParseOptions& options) {
  Parser parser(text, graph, stats, options);
  return parser.Run();
}

Status TurtleParser::ParseFile(const std::string& path, Graph* graph,
                               TurtleParseStats* stats,
                               const TurtleParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::IOError("cannot stat " + path);
  in.seekg(0);
  std::string buffer(static_cast<size_t>(size), '\0');
  if (size > 0 && !in.read(buffer.data(), size)) {
    return Status::IOError("cannot read " + path);
  }
  return ParseString(buffer, graph, stats, options);
}

}  // namespace rdfsum::io
