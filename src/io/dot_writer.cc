#include "io/dot_writer.h"

#include <fstream>
#include <sstream>
#include <unordered_set>

namespace rdfsum::io {
namespace {

std::string DotEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string NodeLabel(const Dictionary& dict, TermId id, bool local) {
  const Term& t = dict.Decode(id);
  std::string text;
  switch (t.kind) {
    case TermKind::kIri:
      text = local ? IriLocalName(t.lexical) : t.lexical;
      break;
    case TermKind::kBlank:
      text = "_:" + t.lexical;
      break;
    case TermKind::kLiteral:
      text = "\"" + t.lexical + "\"";
      break;
  }
  return DotEscape(text);
}

}  // namespace

std::string IriLocalName(const std::string& iri) {
  size_t pos = iri.find_last_of("#/:");
  if (pos == std::string::npos || pos + 1 >= iri.size()) return iri;
  return iri.substr(pos + 1);
}

void DotWriter::Write(const Graph& graph, std::ostream& os,
                      const DotOptions& options) {
  const Dictionary& dict = graph.dict();
  os << "digraph \"" << DotEscape(options.graph_name) << "\" {\n";
  os << "  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n";

  std::unordered_set<TermId> class_nodes;
  for (const Triple& t : graph.types()) class_nodes.insert(t.o);
  for (TermId c : class_nodes) {
    os << "  n" << c << " [label=\""
       << NodeLabel(dict, c, options.local_names)
       << "\", shape=box, color=purple, fontcolor=purple];\n";
  }

  auto edge = [&](const Triple& t, const char* style) {
    os << "  n" << t.s << " -> n" << t.o << " [label=\""
       << NodeLabel(dict, t.p, options.local_names) << "\"" << style << "];\n";
  };
  for (const Triple& t : graph.data()) edge(t, "");
  for (const Triple& t : graph.types()) {
    os << "  n" << t.s << " -> n" << t.o
       << " [label=\"type\", style=dashed, color=purple, "
          "fontcolor=purple];\n";
  }
  for (const Triple& t : graph.schema()) edge(t, ", style=dotted");

  // Emit labels for non-class nodes appearing in data triples.
  std::unordered_set<TermId> emitted = class_nodes;
  auto emit_node = [&](TermId id) {
    if (!emitted.insert(id).second) return;
    os << "  n" << id << " [label=\"" << NodeLabel(dict, id, options.local_names)
       << "\"];\n";
  };
  for (const Triple& t : graph.data()) {
    emit_node(t.s);
    emit_node(t.o);
  }
  for (const Triple& t : graph.types()) emit_node(t.s);
  for (const Triple& t : graph.schema()) {
    emit_node(t.s);
    emit_node(t.o);
  }
  os << "}\n";
}

std::string DotWriter::ToString(const Graph& graph, const DotOptions& options) {
  std::ostringstream os;
  Write(graph, os, options);
  return os.str();
}

Status DotWriter::WriteFile(const Graph& graph, const std::string& path,
                            const DotOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  Write(graph, out, options);
  out.flush();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace rdfsum::io
