#include "io/ntriples_writer.h"

#include <fstream>
#include <sstream>

namespace rdfsum::io {

void NTriplesWriter::Write(const Graph& graph, std::ostream& os) {
  const Dictionary& dict = graph.dict();
  graph.ForEachTriple([&](const Triple& t) {
    os << dict.Decode(t.s).ToNTriples() << " " << dict.Decode(t.p).ToNTriples()
       << " " << dict.Decode(t.o).ToNTriples() << " .\n";
  });
}

std::string NTriplesWriter::ToString(const Graph& graph) {
  std::ostringstream os;
  Write(graph, os);
  return os.str();
}

Status NTriplesWriter::WriteFile(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  Write(graph, out);
  out.flush();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace rdfsum::io
