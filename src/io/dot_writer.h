#ifndef RDFSUM_IO_DOT_WRITER_H_
#define RDFSUM_IO_DOT_WRITER_H_

#include <ostream>
#include <string>

#include "rdf/graph.h"
#include "util/status.h"

namespace rdfsum::io {

/// Graphviz export used to eyeball summaries (the paper's companion website
/// shows exactly such drawings). Data edges are solid and labeled with the
/// property's local name; type edges are dashed purple arrows into box-shaped
/// class nodes; schema edges are dotted.
struct DotOptions {
  /// Strip IRI namespaces down to the local name for readability.
  bool local_names = true;
  std::string graph_name = "rdf";
};

class DotWriter {
 public:
  static void Write(const Graph& graph, std::ostream& os,
                    const DotOptions& options = {});
  static std::string ToString(const Graph& graph,
                              const DotOptions& options = {});
  static Status WriteFile(const Graph& graph, const std::string& path,
                          const DotOptions& options = {});
};

/// Returns the local name of an IRI (substring after the last '#' or '/'),
/// or the input unchanged if neither occurs.
std::string IriLocalName(const std::string& iri);

}  // namespace rdfsum::io

#endif  // RDFSUM_IO_DOT_WRITER_H_
