#ifndef RDFSUM_IO_TURTLE_PARSER_H_
#define RDFSUM_IO_TURTLE_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/graph.h"
#include "util/exec_context.h"
#include "util/status.h"

namespace rdfsum::io {

/// Parsing knobs — the Turtle analogue of io::ParseOptions, so both front
/// ends sit behind the same governance wall.
struct TurtleParseOptions {
  /// In strict mode any malformed statement aborts with InvalidArgument;
  /// otherwise malformed (or unsupported) statements are skipped after a
  /// best-effort scan to the next top-level '.' — triples emitted before
  /// the failure point of a statement stay.
  bool strict = true;
  /// 0 = unlimited. Cap on the byte span of one statement (Turtle is not
  /// line-oriented, so this plays the role of ParseOptions::max_line_bytes:
  /// the recovery guard against a corrupt dump whose missing '.' turns the
  /// rest of the file into one giant statement).
  uint64_t max_statement_bytes = 0;
  /// 0 = unlimited. Cap on one decoded term (lexical + datatype + language
  /// bytes); an oversized term makes the statement malformed.
  uint64_t max_term_bytes = 0;
  /// Optional governance: polled every ExecContext::kCheckInterval
  /// statements; a tripped deadline or cancellation aborts the parse with
  /// the context's status (triples already added stay — callers discard
  /// the graph).
  util::ExecContext* exec = nullptr;
};

/// Counters filled by the Turtle parser.
struct TurtleParseStats {
  /// At most this many line-numbered diagnostics are retained per parse;
  /// the rest only bump `skipped`.
  static constexpr size_t kMaxDiagnostics = 20;

  uint64_t triples = 0;
  uint64_t duplicates = 0;
  uint64_t prefixes = 0;
  uint64_t skipped = 0;  // malformed/unsupported statements (strict = false)
  /// Line-numbered reasons for skipped statements, capped at
  /// kMaxDiagnostics. Strict mode reports the first failure in the returned
  /// Status instead.
  std::vector<std::string> diagnostics;
};

/// A parser for the Turtle subset real datasets actually use — everything
/// N-Triples has, plus:
///   - @prefix / PREFIX and @base / BASE declarations,
///   - prefixed names (ex:thing) and the 'a' keyword,
///   - predicate lists (s p1 o1 ; p2 o2 .) and object lists (s p o1, o2 .),
///   - [] anonymous blank nodes in subject/object position,
///   - numeric (integer/decimal), boolean and quoted literals with
///     @lang / ^^datatype.
///
/// Not supported (NotSupported is returned): collections "( ... )",
/// non-empty blank-node property lists "[ p o ]", and triple-quoted long
/// literals.
class TurtleParser {
 public:
  static Status ParseString(std::string_view text, Graph* graph,
                            TurtleParseStats* stats = nullptr,
                            const TurtleParseOptions& options = {});
  static Status ParseFile(const std::string& path, Graph* graph,
                          TurtleParseStats* stats = nullptr,
                          const TurtleParseOptions& options = {});
};

}  // namespace rdfsum::io

#endif  // RDFSUM_IO_TURTLE_PARSER_H_
