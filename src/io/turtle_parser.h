#ifndef RDFSUM_IO_TURTLE_PARSER_H_
#define RDFSUM_IO_TURTLE_PARSER_H_

#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "util/status.h"

namespace rdfsum::io {

/// Counters filled by the Turtle parser.
struct TurtleParseStats {
  uint64_t triples = 0;
  uint64_t duplicates = 0;
  uint64_t prefixes = 0;
};

/// A parser for the Turtle subset real datasets actually use — everything
/// N-Triples has, plus:
///   - @prefix / PREFIX and @base / BASE declarations,
///   - prefixed names (ex:thing) and the 'a' keyword,
///   - predicate lists (s p1 o1 ; p2 o2 .) and object lists (s p o1, o2 .),
///   - [] anonymous blank nodes in subject/object position,
///   - numeric (integer/decimal), boolean and quoted literals with
///     @lang / ^^datatype.
///
/// Not supported (NotSupported is returned): collections "( ... )",
/// non-empty blank-node property lists "[ p o ]", and triple-quoted long
/// literals.
class TurtleParser {
 public:
  static Status ParseString(std::string_view text, Graph* graph,
                            TurtleParseStats* stats = nullptr);
  static Status ParseFile(const std::string& path, Graph* graph,
                          TurtleParseStats* stats = nullptr);
};

}  // namespace rdfsum::io

#endif  // RDFSUM_IO_TURTLE_PARSER_H_
