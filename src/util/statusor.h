#ifndef RDFSUM_UTIL_STATUSOR_H_
#define RDFSUM_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace rdfsum {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// is absent. Mirrors absl::StatusOr / rocksdb's pattern of returning a
/// Status plus an out-parameter, folded into one object.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a non-OK status. Asserts that the status is not OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr(Status) requires a non-OK status");
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of `rexpr` (a StatusOr<T> expression) to `lhs`, or
/// returns the error status from the enclosing function.
#define RDFSUM_ASSIGN_OR_RETURN(lhs, rexpr)        \
  RDFSUM_ASSIGN_OR_RETURN_IMPL_(                   \
      RDFSUM_STATUS_CONCAT_(_status_or, __LINE__), lhs, rexpr)

#define RDFSUM_STATUS_CONCAT_INNER_(a, b) a##b
#define RDFSUM_STATUS_CONCAT_(a, b) RDFSUM_STATUS_CONCAT_INNER_(a, b)
#define RDFSUM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace rdfsum

#endif  // RDFSUM_UTIL_STATUSOR_H_
