#ifndef RDFSUM_UTIL_RANDOM_H_
#define RDFSUM_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace rdfsum {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// All dataset generators take an explicit seed so experiments are exactly
/// reproducible across runs and platforms; std::mt19937 distributions are
/// not portable across standard library implementations, so we roll our own
/// uniform / zipf sampling.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipf-distributed integer in [0, n) with exponent s (s=0 -> uniform).
  /// Uses an approximate inverse-CDF method; deterministic for a seed.
  uint64_t Zipf(uint64_t n, double s);

  /// Samples k distinct indices from [0, n); k is clamped to n.
  std::vector<uint64_t> SampleDistinct(uint64_t n, uint64_t k);

 private:
  uint64_t state_[4];
};

}  // namespace rdfsum

#endif  // RDFSUM_UTIL_RANDOM_H_
