#ifndef RDFSUM_UTIL_COUNTERS_H_
#define RDFSUM_UTIL_COUNTERS_H_

#include <atomic>
#include <cstdint>

namespace rdfsum::util {

/// Lock-free accumulator for one phase of a served request (parse, plan,
/// execute, ...): event count, total wall micros, and the worst single
/// observation. Many threads Record() concurrently; readers see a slightly
/// torn but monotonically growing view, which is all a STATS report needs.
/// Relaxed ordering throughout — the counters order nothing.
class PhaseCounter {
 public:
  void Record(uint64_t micros) {
    count_.fetch_add(1, std::memory_order_relaxed);
    total_us_.fetch_add(micros, std::memory_order_relaxed);
    uint64_t prev = max_us_.load(std::memory_order_relaxed);
    while (prev < micros &&
           !max_us_.compare_exchange_weak(prev, micros,
                                          std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t total_us() const {
    return total_us_.load(std::memory_order_relaxed);
  }
  uint64_t max_us() const { return max_us_.load(std::memory_order_relaxed); }

  /// Mean micros per event; 0 when nothing was recorded.
  uint64_t mean_us() const {
    uint64_t n = count();
    return n == 0 ? 0 : total_us() / n;
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

}  // namespace rdfsum::util

#endif  // RDFSUM_UTIL_COUNTERS_H_
