#ifndef RDFSUM_UTIL_BINARY_IO_H_
#define RDFSUM_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>

namespace rdfsum {

/// Little helpers for the fixed-width binary formats used by the store and
/// the summary persistence (native endianness; the files are caches, not
/// interchange formats).

inline void PutU32(std::ostream& os, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  os.write(buf, 4);
}

inline void PutU64(std::ostream& os, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  os.write(buf, 8);
}

inline void PutString(std::ostream& os, const std::string& s) {
  PutU64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline bool GetU32(std::istream& is, uint32_t* v) {
  char buf[4];
  is.read(buf, 4);
  if (!is) return false;
  std::memcpy(v, buf, 4);
  return true;
}

inline bool GetU64(std::istream& is, uint64_t* v) {
  char buf[8];
  is.read(buf, 8);
  if (!is) return false;
  std::memcpy(v, buf, 8);
  return true;
}

inline bool GetString(std::istream& is, std::string* s) {
  uint64_t len = 0;
  if (!GetU64(is, &len)) return false;
  if (len > (1ULL << 32)) return false;  // sanity bound
  s->resize(len);
  is.read(s->data(), static_cast<std::streamsize>(len));
  return static_cast<bool>(is);
}

}  // namespace rdfsum

#endif  // RDFSUM_UTIL_BINARY_IO_H_
