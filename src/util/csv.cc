#include "util/csv.h"

#include <algorithm>

namespace rdfsum {
namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToAscii() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < header_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string rule = "|";
  for (size_t w : widths) rule += std::string(w + 2, '-') + "|";
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += CsvEscape(row[i]);
    }
    out.push_back('\n');
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

void TablePrinter::Print(std::ostream& os, const std::string& title) const {
  os << "\n== " << title << " ==\n" << ToAscii();
}

}  // namespace rdfsum
