#ifndef RDFSUM_UTIL_PARALLEL_SORT_H_
#define RDFSUM_UTIL_PARALLEL_SORT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/parallel_for.h"

namespace rdfsum::util {

/// Items below which a parallel sort degenerates to std::sort: sharding a
/// few thousand elements costs more in thread spawns than the sort itself.
inline constexpr uint64_t kMinSortItemsPerShard = 1024;

/// Sorts [begin, end) under `less` with up to `num_threads` workers (0 = all
/// hardware cores): contiguous shards are std::sort'ed in parallel, then
/// combined by log2(shards) rounds of pairwise-parallel std::inplace_merge.
///
/// Caller contract for determinism: elements that compare equal under `less`
/// must be indistinguishable (byte-identical), because neither std::sort nor
/// the shard boundaries are stable. Every caller in this codebase sorts
/// permutations of a triple set whose comparator keys cover all three
/// components, so equal means identical and the result is byte-for-byte the
/// sequential std::sort result at every thread count.
template <typename It, typename Less>
void ParallelSort(It begin, It end, Less less, uint32_t num_threads) {
  const uint64_t total = static_cast<uint64_t>(end - begin);
  const uint32_t shards =
      ResolveThreadCount(num_threads, total / kMinSortItemsPerShard);
  if (shards <= 1) {
    std::sort(begin, end, less);
    return;
  }

  // Shard boundaries, fixed for all merge rounds: cuts[i] is where shard i
  // starts; cuts[shards] == total.
  std::vector<uint64_t> cuts(shards + 1);
  for (uint32_t s = 0; s < shards; ++s) cuts[s] = ShardRange(total, s, shards).first;
  cuts[shards] = total;

  ParallelFor(shards, [&](uint32_t s) {
    std::sort(begin + static_cast<int64_t>(cuts[s]),
              begin + static_cast<int64_t>(cuts[s + 1]), less);
  });

  // Pairwise merge rounds: width doubles each round, merges within a round
  // touch disjoint ranges and run in parallel.
  for (uint64_t width = 1; width < shards; width *= 2) {
    const uint64_t stride = 2 * width;
    const uint32_t jobs =
        static_cast<uint32_t>((shards - width + stride - 1) / stride);
    ParallelFor(jobs, [&](uint32_t j) {
      const uint64_t lo = j * stride;
      const uint64_t mid = lo + width;
      const uint64_t hi = std::min<uint64_t>(lo + stride, shards);
      std::inplace_merge(begin + static_cast<int64_t>(cuts[lo]),
                         begin + static_cast<int64_t>(cuts[mid]),
                         begin + static_cast<int64_t>(cuts[hi]), less);
    });
  }
}

}  // namespace rdfsum::util

#endif  // RDFSUM_UTIL_PARALLEL_SORT_H_
