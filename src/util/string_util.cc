#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace rdfsum {

std::vector<std::string_view> Split(std::string_view input, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(input.substr(start));
      break;
    }
    out.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string FormatWithCommas(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string AsciiToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace rdfsum
