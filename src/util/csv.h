#ifndef RDFSUM_UTIL_CSV_H_
#define RDFSUM_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace rdfsum {

/// Accumulates rows and renders them either as an aligned ASCII table (for
/// terminal inspection of benchmark results, matching the tables in
/// EXPERIMENTS.md) or as CSV (for plotting).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; it may have fewer cells than the header.
  void AddRow(std::vector<std::string> row);

  /// Renders an aligned, pipe-separated table.
  std::string ToAscii() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string ToCsv() const;

  /// Writes the ASCII rendering preceded by `title`.
  void Print(std::ostream& os, const std::string& title) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rdfsum

#endif  // RDFSUM_UTIL_CSV_H_
