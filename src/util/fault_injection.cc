#include "util/fault_injection.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/string_util.h"

namespace rdfsum::util {
namespace {

struct ArmedPoint {
  Status status;
  uint64_t countdown = 1;  // fail on this hit and later ones
  uint64_t latency_ms = 0;
  bool latency_only = false;  // sleep, then return OK
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, ArmedPoint> points;
  std::unordered_map<std::string, uint64_t> hits;
  // random mode: every failpoint fails with `percent`% probability.
  bool random_mode = false;
  uint32_t random_percent = 1;
  uint64_t rng_state = 0;
  bool env_parsed = false;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

// Any-failpoint-armed fast path, updated under the registry mutex.
std::atomic<bool> g_armed{false};

bool ParseCode(std::string_view code, Status* out, std::string_view name) {
  std::string msg = "injected fault at " + std::string(name);
  if (code == "ioerror") *out = Status::IOError(msg);
  else if (code == "corruption") *out = Status::Corruption(msg);
  else if (code == "cancelled") *out = Status::Cancelled(msg);
  else if (code == "deadline") *out = Status::DeadlineExceeded(msg);
  else if (code == "resource") *out = Status::ResourceExhausted(msg);
  else if (code == "internal") *out = Status::Internal(msg);
  else if (code == "invalid") *out = Status::InvalidArgument(msg);
  else if (code == "notfound") *out = Status::NotFound(msg);
  else return false;
  return true;
}

// splitmix64: deterministic, seedable, good enough for fault dice.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Parses RDFSUM_FAILPOINTS once; called under the registry mutex.
void ParseEnvLocked(Registry& r) {
  if (r.env_parsed) return;
  r.env_parsed = true;
  const char* env = std::getenv("RDFSUM_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  std::string spec = env;
  if (StartsWith(spec, "random")) {
    // random[:seed[:percent]]
    uint64_t seed =
        static_cast<uint64_t>(std::chrono::steady_clock::now()
                                  .time_since_epoch()
                                  .count());
    uint32_t percent = 1;
    size_t first = spec.find(':');
    if (first != std::string::npos) {
      size_t second = spec.find(':', first + 1);
      std::string seed_str = spec.substr(
          first + 1, second == std::string::npos ? std::string::npos
                                                 : second - first - 1);
      if (!seed_str.empty()) seed = std::strtoull(seed_str.c_str(), nullptr, 10);
      if (second != std::string::npos) {
        percent = static_cast<uint32_t>(
            std::strtoul(spec.c_str() + second + 1, nullptr, 10));
      }
    }
    r.random_mode = true;
    r.random_percent = percent == 0 ? 1 : percent;
    r.rng_state = seed;
    std::fprintf(stderr,
                 "rdfsum: fault injection armed (random mode, seed=%llu, "
                 "p=%u%%)\n",
                 static_cast<unsigned long long>(seed), r.random_percent);
    g_armed.store(true, std::memory_order_release);
    return;
  }
  // name=code[;name=code...]  (',' also accepted as separator)
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find_first_of(";,", pos);
    std::string entry = spec.substr(
        pos, end == std::string::npos ? std::string::npos : end - pos);
    pos = end == std::string::npos ? spec.size() : end + 1;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    std::string name = entry.substr(0, eq);
    std::string code = entry.substr(eq + 1);
    ArmedPoint p;
    if (StartsWith(code, "sleep:")) {
      p.latency_only = true;
      p.latency_ms = std::strtoull(code.c_str() + 6, nullptr, 10);
      p.status = Status::OK();
    } else if (!ParseCode(code, &p.status, name)) {
      std::fprintf(stderr, "rdfsum: ignoring bad failpoint spec '%s'\n",
                   entry.c_str());
      continue;
    }
    r.points[name] = std::move(p);
  }
  if (!r.points.empty()) {
    std::fprintf(stderr, "rdfsum: fault injection armed (%zu failpoint(s))\n",
                 r.points.size());
    g_armed.store(true, std::memory_order_release);
  }
}

}  // namespace

bool FaultInjection::enabled() {
  if (g_armed.load(std::memory_order_acquire)) return true;
  // The env var may arm points lazily; parse it the first time through.
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ParseEnvLocked(r);
  return g_armed.load(std::memory_order_acquire);
}

Status FaultInjection::Hit(std::string_view name) {
  Registry& r = registry();
  uint64_t latency_ms = 0;
  Status result;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    ParseEnvLocked(r);
    std::string key(name);
    uint64_t count = ++r.hits[key];
    if (r.random_mode) {
      if (NextRandom(&r.rng_state) % 100 < r.random_percent) {
        result = Status::IOError("injected fault at " + key);
      }
    }
    auto it = r.points.find(key);
    if (it != r.points.end() && count >= it->second.countdown) {
      latency_ms = it->second.latency_ms;
      if (!it->second.latency_only) result = it->second.status;
    }
  }
  if (latency_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(latency_ms));
  }
  return result;
}

void FaultInjection::Arm(std::string_view name, Status status,
                         const ArmOptions& options) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.env_parsed = true;  // explicit arming overrides env lazily-parsed state
  ArmedPoint p;
  p.status = std::move(status);
  p.countdown = options.countdown == 0 ? 1 : options.countdown;
  p.latency_ms = options.latency_ms;
  p.latency_only = p.status.ok();
  r.points[std::string(name)] = std::move(p);
  g_armed.store(true, std::memory_order_release);
}

void FaultInjection::ArmRandom(uint64_t seed, uint32_t percent) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.env_parsed = true;
  r.random_mode = true;
  r.random_percent = percent == 0 ? 1 : percent;
  r.rng_state = seed;
  g_armed.store(true, std::memory_order_release);
}

void FaultInjection::Clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points.clear();
  r.hits.clear();
  r.random_mode = false;
  r.env_parsed = true;  // a cleared registry stays cleared
  g_armed.store(false, std::memory_order_release);
}

uint64_t FaultInjection::HitCount(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.hits.find(std::string(name));
  return it == r.hits.end() ? 0 : it->second;
}

}  // namespace rdfsum::util
