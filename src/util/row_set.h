#ifndef RDFSUM_UTIL_ROW_SET_H_
#define RDFSUM_UTIL_ROW_SET_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "rdf/triple.h"

namespace rdfsum::util {

/// Deduplicating set of fixed-width packed TermId rows: all rows live packed
/// in one arena and an open-addressing table stores row ordinals, so the hot
/// path does one hash probe and no per-row allocation (the std::set of
/// vectors it replaced allocated per row and compared in O(width log n)).
///
/// Shared by the query layer for projection dedup (Distinct), and as the key
/// directory of HashJoinCursor's build side: InsertOrFind hands back a dense
/// ordinal per distinct key that callers index side arrays with.
///
/// A width of 0 models the boolean projection: there is exactly one possible
/// (empty) row. Capacity is bounded by ~4B rows (ordinals are uint32_t).
class RowSet {
 public:
  static constexpr uint32_t kNotFound = UINT32_MAX;

  explicit RowSet(size_t width) : width_(width) { slots_.resize(64, 0); }

  size_t width() const { return width_; }
  size_t size() const { return count_; }
  const TermId* row(size_t i) const { return arena_.data() + i * width_; }

  /// Returns true iff the row was newly inserted.
  bool Insert(const TermId* row_data) {
    return InsertOrFind(row_data).second;
  }

  /// Inserts the row if absent; returns its dense ordinal (insertion order,
  /// 0-based) and whether it was newly inserted.
  std::pair<uint32_t, bool> InsertOrFind(const TermId* row_data) {
    if (width_ == 0) {
      if (count_ > 0) return {0, false};
      ++count_;
      return {0, true};
    }
    const uint64_t h = Hash(row_data);
    const size_t mask = slots_.size() - 1;
    size_t idx = static_cast<size_t>(h) & mask;
    while (slots_[idx] != 0) {
      if (std::equal(row_data, row_data + width_, row(slots_[idx] - 1))) {
        return {slots_[idx] - 1, false};
      }
      idx = (idx + 1) & mask;
    }
    arena_.insert(arena_.end(), row_data, row_data + width_);
    const uint32_t ordinal = static_cast<uint32_t>(count_);
    slots_[idx] = static_cast<uint32_t>(++count_);
    if (count_ * 10 >= slots_.size() * 7) Grow();
    return {ordinal, true};
  }

  /// Ordinal of the row, or kNotFound. Never mutates.
  uint32_t Find(const TermId* row_data) const {
    if (width_ == 0) return count_ > 0 ? 0 : kNotFound;
    const uint64_t h = Hash(row_data);
    const size_t mask = slots_.size() - 1;
    size_t idx = static_cast<size_t>(h) & mask;
    while (slots_[idx] != 0) {
      if (std::equal(row_data, row_data + width_, row(slots_[idx] - 1))) {
        return slots_[idx] - 1;
      }
      idx = (idx + 1) & mask;
    }
    return kNotFound;
  }

 private:
  uint64_t Hash(const TermId* row_data) const {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (size_t i = 0; i < width_; ++i) {
      h ^= row_data[i];
      h *= 0xBF58476D1CE4E5B9ULL;
      h ^= h >> 29;
    }
    return h;
  }

  void Grow() {
    std::vector<uint32_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, 0);
    const size_t mask = slots_.size() - 1;
    for (size_t r = 0; r < count_; ++r) {
      size_t idx = static_cast<size_t>(Hash(row(r))) & mask;
      while (slots_[idx] != 0) idx = (idx + 1) & mask;
      slots_[idx] = static_cast<uint32_t>(r + 1);
    }
  }

  size_t width_;
  size_t count_ = 0;
  std::vector<TermId> arena_;    // count_ * width_ packed ids
  std::vector<uint32_t> slots_;  // open addressing; row ordinal + 1, 0 empty
};

}  // namespace rdfsum::util

#endif  // RDFSUM_UTIL_ROW_SET_H_
