#ifndef RDFSUM_UTIL_STRING_UTIL_H_
#define RDFSUM_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rdfsum {

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view input, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats `n` with thousands separators, e.g. 1234567 -> "1,234,567".
std::string FormatWithCommas(uint64_t n);

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double value, int digits);

/// Lower-cases ASCII characters.
std::string AsciiToLower(std::string_view input);

}  // namespace rdfsum

#endif  // RDFSUM_UTIL_STRING_UTIL_H_
