#ifndef RDFSUM_UTIL_FAULT_INJECTION_H_
#define RDFSUM_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace rdfsum::util {

/// Named failpoints: code sites declare RDFSUM_FAILPOINT("area:site") at I/O
/// and shard boundaries; tests and CI arm them to inject Status errors,
/// allocation failures (kResourceExhausted at sites with a degrade path),
/// and latency — so every error path actually executes under sanitizers.
///
/// Compiled in only when RDFSUM_FAILPOINTS_ENABLED is defined (CMake defines
/// it for Debug builds); in Release the macro expands to nothing and Hit()
/// is never called from library code. The registry API below always exists
/// so tests link in every configuration — guard tests with
/// FaultInjection::compiled_in().
///
/// Arming:
///   - Test API: FaultInjection::Arm("persistence:read",
///         Status::IOError("injected"), {.countdown = 3, .latency_ms = 5});
///     fails the 3rd hit (and every later one) after sleeping 5 ms.
///   - Env var, parsed once at first Hit():
///         RDFSUM_FAILPOINTS="persistence:read=ioerror;quotient:shard=cancelled"
///     codes: ioerror, corruption, cancelled, deadline, resource, internal,
///     invalid, notfound. `name=sleep:MS` injects latency only.
///         RDFSUM_FAILPOINTS="random:SEED[:PERCENT]"
///     arms *every* failpoint to fail with PERCENT% probability (default 1)
///     using a deterministic RNG seeded with SEED — the CI fault wall; the
///     seed is logged so failures replay.
///
/// Thread safety: Hit() takes a mutex. Failpoints are a debugging facility;
/// the contention is irrelevant and keeps the registry simple.
class FaultInjection {
 public:
  struct ArmOptions {
    /// Fail on the Nth hit (1 = first, the default) and every one after.
    uint64_t countdown = 1;
    /// Sleep this long at every hit before deciding the outcome.
    uint64_t latency_ms = 0;
  };

  /// True when the library was built with failpoint support.
  static constexpr bool compiled_in() {
#ifdef RDFSUM_FAILPOINTS_ENABLED
    return true;
#else
    return false;
#endif
  }

  /// True when at least one failpoint is armed (cheap: one relaxed atomic
  /// load — the fast path of every RDFSUM_FAILPOINT in an idle process).
  static bool enabled();

  /// Evaluates the failpoint `name`: returns the armed Status (after any
  /// injected latency), or OK when the failpoint is not armed / not yet
  /// counted down. Also rolls the random-mode dice when armed via
  /// RDFSUM_FAILPOINTS=random:....
  static Status Hit(std::string_view name);

  /// Arms `name` to return `status`. Overwrites an existing arming. (Two
  /// overloads instead of a `= {}` default: GCC rejects brace defaults for
  /// nested aggregates with member initializers, PR 88165.)
  static void Arm(std::string_view name, Status status) {
    Arm(name, std::move(status), ArmOptions());
  }
  static void Arm(std::string_view name, Status status,
                  const ArmOptions& options);

  /// Arms every failpoint to fail with `percent`% probability, seeded
  /// deterministically. Equivalent to RDFSUM_FAILPOINTS=random:seed:percent.
  static void ArmRandom(uint64_t seed, uint32_t percent = 1);

  /// Disarms everything (including random mode and the env arming).
  static void Clear();

  /// Number of times `name` was evaluated (armed or not), for tests.
  static uint64_t HitCount(std::string_view name);
};

/// Declares a failpoint in a function returning Status or StatusOr<T>.
/// Expands to nothing unless the build defines RDFSUM_FAILPOINTS_ENABLED.
#ifdef RDFSUM_FAILPOINTS_ENABLED
#define RDFSUM_FAILPOINT(name)                                        \
  do {                                                                \
    if (::rdfsum::util::FaultInjection::enabled()) {                  \
      ::rdfsum::Status _fp_status =                                   \
          ::rdfsum::util::FaultInjection::Hit(name);                  \
      if (!_fp_status.ok()) return _fp_status;                        \
    }                                                                 \
  } while (0)
/// Failpoint for sites that handle the injected Status themselves (degrade
/// paths, per-shard status slots): evaluates to a Status expression.
#define RDFSUM_FAILPOINT_STATUS(name)                     \
  (::rdfsum::util::FaultInjection::enabled()              \
       ? ::rdfsum::util::FaultInjection::Hit(name)        \
       : ::rdfsum::Status::OK())
#else
#define RDFSUM_FAILPOINT(name) \
  do {                         \
  } while (0)
#define RDFSUM_FAILPOINT_STATUS(name) (::rdfsum::Status::OK())
#endif

}  // namespace rdfsum::util

#endif  // RDFSUM_UTIL_FAULT_INJECTION_H_
