#ifndef RDFSUM_UTIL_PARALLEL_FOR_H_
#define RDFSUM_UTIL_PARALLEL_FOR_H_

#include <algorithm>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "util/exec_context.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rdfsum::util {

/// Resolves a requested thread count against the hardware and the amount of
/// work: 0 means std::thread::hardware_concurrency(), never more threads
/// than work items, always at least one, never more than kMaxThreads (so a
/// bogus request — e.g. "-1" wrapped to ~4e9 by a caller's parser — cannot
/// exhaust the process with thread spawns). All arithmetic is 64-bit so a
/// work-item count above 2^32 cannot truncate into the clamp (the bug the
/// old per-call clamps in summary/parallel.cc had).
inline constexpr uint32_t kMaxThreads = 256;

inline uint32_t ResolveThreadCount(uint32_t requested, uint64_t work_items) {
  uint64_t threads =
      requested != 0 ? requested
                     : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<uint64_t>(threads, kMaxThreads);
  threads = std::min<uint64_t>(threads, std::max<uint64_t>(work_items, 1));
  return static_cast<uint32_t>(threads);
}

/// Half-open slice of [0, total) owned by `shard` of `num_shards`:
/// contiguous, balanced to within one element, and jointly covering the
/// whole range.
inline std::pair<uint64_t, uint64_t> ShardRange(uint64_t total, uint32_t shard,
                                                uint32_t num_shards) {
  uint64_t chunk = total / num_shards;
  uint64_t rem = total % num_shards;
  uint64_t begin = shard * chunk + std::min<uint64_t>(shard, rem);
  return {begin, begin + chunk + (shard < rem ? 1 : 0)};
}

/// Runs body(shard) for every shard in [0, num_threads): shard 0 on the
/// calling thread, the rest as tasks on the shared ThreadPool, joining them
/// all before returning — the shared fan-out/join boilerplate of every
/// parallel pass, and the barrier between passes. Pool tasks replace the
/// per-call std::thread spawns this used to do: concurrent summarize/load/
/// query requests now share one set of OS threads, and nested fan-out (a
/// parallel Freeze inside a parallel load) is safe because TaskGroup::Wait
/// helps run its own group's queued shards (see util/thread_pool.h).
///
/// Shard count, sharding, and outputs are untouched by pool size: a shard
/// is a unit of *work division*, not a dedicated thread, so results stay
/// byte-identical however many workers actually run them.
template <typename Body>
void ParallelFor(uint32_t num_threads, Body&& body) {
  if (num_threads <= 1) {
    body(0u);
    return;
  }
  TaskGroup group(ThreadPool::Shared());
  for (uint32_t shard = 1; shard < num_threads; ++shard) {
    group.Submit([&body, shard] { body(shard); });
  }
  body(0u);
  group.Wait();
}

/// Shards [0, total) contiguously over num_threads threads and runs
/// body(shard, begin, end) per shard (empty ranges included, so per-shard
/// state is initialized even when total < num_threads). Accepts 0 — the
/// codebase's "hardware concurrency" sentinel — as 1, so forwarding an
/// unresolved options value cannot divide by zero in ShardRange.
template <typename Body>
void ParallelForRanges(uint32_t num_threads, uint64_t total, Body&& body) {
  const uint32_t shards = std::max(num_threads, 1u);
  ParallelFor(shards, [&body, total, shards](uint32_t shard) {
    auto [begin, end] = ShardRange(total, shard, shards);
    body(shard, begin, end);
  });
}

/// How many items a worker processes between ExecContext polls. Coarser
/// than ExecContext::kCheckInterval because shard bodies do a few
/// nanoseconds of work per item; this still bounds cancellation latency to
/// well under a millisecond of shard work.
inline constexpr uint64_t kCancelCheckChunk = 8192;

/// Runs body(chunk_begin, chunk_end) over [begin, end) in chunks of
/// kCancelCheckChunk items, polling `ctx` between chunks. Stops at the first
/// non-OK poll and returns that status (the remaining items are skipped —
/// the caller must treat the shard's output as partial and discard it).
///
/// This is the worker-side half of cooperative cancellation: a worker that
/// observes cancellation returns from its body normally and falls through
/// to ParallelFor's join, so the per-round barriers of the parallel
/// summarizers can never deadlock on a cancelled run.
template <typename ChunkBody>
Status CancellableChunks(const ExecContext* ctx, uint64_t begin, uint64_t end,
                         ChunkBody&& body) {
  if (ctx == nullptr) {
    body(begin, end);
    return Status();
  }
  for (uint64_t pos = begin; pos < end; pos += kCancelCheckChunk) {
    Status st = ctx->Check();
    if (!st.ok()) return st;
    body(pos, std::min(end, pos + kCancelCheckChunk));
  }
  return ctx->Check();
}

}  // namespace rdfsum::util

#endif  // RDFSUM_UTIL_PARALLEL_FOR_H_
