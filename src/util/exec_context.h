#ifndef RDFSUM_UTIL_EXEC_CONTEXT_H_
#define RDFSUM_UTIL_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/status.h"

namespace rdfsum::util {

/// Execution-governance handle threaded through the whole stack: a deadline,
/// a cooperative cancellation token, a result-row budget, and a memory
/// budget. One ExecContext governs one logical request (a query, a
/// summarization run, a load); the CLI builds one per invocation from
/// --timeout-ms / --max-rows / --mem-budget-mb, and a serving daemon would
/// build one per connection.
///
/// Everything is thread-safe: parallel_for workers poll the same context the
/// coordinating thread may Cancel(), and concurrent cursors charge the same
/// memory budget. All counters are atomics; Check() reads the monotonic
/// clock only when it actually evaluates the deadline.
///
/// Conventions (see src/util/README.md for the full writeup):
///   - A null ExecContext* means "ungoverned" — every call site must accept
///     nullptr and skip the checks.
///   - Loops poll Check() every kCheckInterval items (not every item: one
///     relaxed load per item is cheap, a clock read is not). Workers that
///     observe a non-OK Check() finish their chunk and fall through to the
///     join barrier — they never block, so cancellation cannot deadlock a
///     barrier.
///   - Check() failures are sticky by construction: once the deadline passed
///     or Cancel() was called, every later Check() fails the same way.
class ExecContext {
 public:
  /// Budget values; 0 always means "unlimited".
  struct Limits {
    /// Wall-clock budget from construction, after which Check() returns
    /// kDeadlineExceeded.
    int64_t timeout_ms = 0;
    /// Result rows the governed tree may produce before ChargeRows() returns
    /// kResourceExhausted.
    uint64_t max_rows = 0;
    /// Bytes of operator state (hash-join build sides, ...) that may be
    /// charged before TryChargeMemory() refuses.
    uint64_t memory_budget_bytes = 0;
  };

  /// How often polling loops should call Check(), in items between calls.
  /// Public so tests can assert "terminates within one check interval".
  static constexpr uint32_t kCheckInterval = 256;

  /// Ungoverned context: never expires, all budgets unlimited; still
  /// cancellable.
  ExecContext() : ExecContext(Limits{}) {}

  explicit ExecContext(const Limits& limits)
      : limits_(limits),
        deadline_(limits.timeout_ms > 0
                      ? Clock::now() + std::chrono::milliseconds(
                                           limits.timeout_ms)
                      : Clock::time_point::max()) {}

  /// Not copyable: the counters are per-request identity.
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Requests cooperative cancellation; idempotent, callable from any
  /// thread. Workers observe it at their next Check().
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  bool has_deadline() const {
    return deadline_ != Clock::time_point::max();
  }

  /// The cheap poll: cancellation first (one atomic load), then the
  /// deadline (a clock read only when one is set). OK when neither tripped.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("execution cancelled");
    if (has_deadline() && Clock::now() >= deadline_) {
      return Status::DeadlineExceeded("deadline exceeded after " +
                                      std::to_string(limits_.timeout_ms) +
                                      " ms");
    }
    return Status::OK();
  }

  /// Charges `n` produced result rows against the row budget. Returns
  /// kResourceExhausted once the budget is exceeded (the row that tripped it
  /// is not delivered). Unlimited when max_rows == 0.
  Status ChargeRows(uint64_t n = 1) {
    if (limits_.max_rows == 0) return Status::OK();
    uint64_t total =
        rows_charged_.fetch_add(n, std::memory_order_relaxed) + n;
    if (total > limits_.max_rows) {
      return Status::ResourceExhausted(
          "row budget exhausted (max " + std::to_string(limits_.max_rows) +
          " rows)");
    }
    return Status::OK();
  }

  /// Tries to reserve `bytes` against the memory budget; returns false (and
  /// charges nothing) when the reservation would exceed it. Always succeeds
  /// when memory_budget_bytes == 0.
  bool TryChargeMemory(uint64_t bytes) {
    if (limits_.memory_budget_bytes == 0) return true;
    uint64_t used = memory_used_.load(std::memory_order_relaxed);
    while (true) {
      if (used + bytes > limits_.memory_budget_bytes) return false;
      if (memory_used_.compare_exchange_weak(used, used + bytes,
                                             std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  /// Returns a reservation made by TryChargeMemory (an operator tearing
  /// down, or a degrading hash join abandoning its build side).
  void ReleaseMemory(uint64_t bytes) {
    if (limits_.memory_budget_bytes == 0) return;
    memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  uint64_t memory_used() const {
    return memory_used_.load(std::memory_order_relaxed);
  }
  uint64_t rows_charged() const {
    return rows_charged_.load(std::memory_order_relaxed);
  }
  const Limits& limits() const { return limits_; }

  /// True when `estimated_bytes` of operator state would not fit the
  /// remaining memory budget — the executor's compile-time degrade test.
  /// Always false when no memory budget is set.
  bool WouldExceedMemory(uint64_t estimated_bytes) const {
    if (limits_.memory_budget_bytes == 0) return false;
    uint64_t used = memory_used_.load(std::memory_order_relaxed);
    return used + estimated_bytes > limits_.memory_budget_bytes;
  }

 private:
  using Clock = std::chrono::steady_clock;

  Limits limits_;
  Clock::time_point deadline_;
  std::atomic<bool> cancelled_{false};
  std::atomic<uint64_t> rows_charged_{0};
  std::atomic<uint64_t> memory_used_{0};
};

}  // namespace rdfsum::util

#endif  // RDFSUM_UTIL_EXEC_CONTEXT_H_
