#ifndef RDFSUM_UTIL_STATUS_H_
#define RDFSUM_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace rdfsum {

/// Outcome of an operation that can fail, in the style of rocksdb::Status.
///
/// The library does not throw exceptions: fallible operations return a
/// Status (or StatusOr<T>, see statusor.h) that callers must inspect.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kInvalidArgument = 1,
    kNotFound = 2,
    kCorruption = 3,
    kIOError = 4,
    kNotSupported = 5,
    kInternal = 6,
    kAlreadyExists = 7,
  };

  /// Creates an OK status. Equivalent to Status::OK().
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad IRI".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define RDFSUM_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::rdfsum::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace rdfsum

#endif  // RDFSUM_UTIL_STATUS_H_
