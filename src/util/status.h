#ifndef RDFSUM_UTIL_STATUS_H_
#define RDFSUM_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace rdfsum {

/// Outcome of an operation that can fail, in the style of rocksdb::Status.
///
/// The library does not throw exceptions: fallible operations return a
/// Status (or StatusOr<T>, see statusor.h) that callers must inspect.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kInvalidArgument = 1,
    kNotFound = 2,
    kCorruption = 3,
    kIOError = 4,
    kNotSupported = 5,
    kInternal = 6,
    kAlreadyExists = 7,
    // Resource-governance codes (see util/exec_context.h): an ExecContext
    // deadline expired, the caller cancelled, or a row/memory budget ran
    // out. kDeadlineExceeded and kResourceExhausted are retryable (the same
    // request can succeed with a larger budget); kCancelled is not — it
    // reports caller intent, not resource pressure.
    kDeadlineExceeded = 8,
    kCancelled = 9,
    kResourceExhausted = 10,
  };

  /// Creates an OK status. Equivalent to Status::OK().
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(Code::kDeadlineExceeded, msg);
  }
  static Status Cancelled(std::string_view msg) {
    return Status(Code::kCancelled, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(Code::kResourceExhausted, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsDeadlineExceeded() const { return code_ == Code::kDeadlineExceeded; }
  bool IsCancelled() const { return code_ == Code::kCancelled; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }

  /// True for failures that can succeed on a retry with a larger budget or
  /// at a quieter moment: kDeadlineExceeded, kResourceExhausted, and
  /// kIOError (transient I/O). kCancelled is deliberate caller intent and
  /// kCorruption/kInvalidArgument describe the input itself, so retrying
  /// them verbatim cannot help.
  bool IsRetryable() const {
    return code_ == Code::kDeadlineExceeded ||
           code_ == Code::kResourceExhausted || code_ == Code::kIOError;
  }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Documents a deliberately dropped status (e.g. a best-effort write to a
  /// peer that may already be gone) at the call site.
  void IgnoreError() const {}

  /// Human-readable rendering, e.g. "InvalidArgument: bad IRI".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define RDFSUM_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::rdfsum::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace rdfsum

#endif  // RDFSUM_UTIL_STATUS_H_
