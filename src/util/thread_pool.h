#ifndef RDFSUM_UTIL_THREAD_POOL_H_
#define RDFSUM_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rdfsum::util {

class TaskGroup;

/// Process-wide work-stealing task pool. One pool (ThreadPool::Shared(),
/// lazily constructed and sized to the hardware) serves every parallel
/// phase — summarize shards, parallel Freeze sorts, chunked parsing, and
/// query morsels — so concurrent requests share one set of OS threads
/// instead of each spawning their own.
///
/// Structure: one deque per worker, each guarded by its own mutex. A worker
/// pops its own deque from the back (LIFO — the task it submitted last is
/// the one whose data is hottest) and, when empty, steals from the other
/// deques' fronts (FIFO — the oldest task is the least likely to be cache-
/// resident anywhere). Submission round-robins across deques. All queue
/// access is mutex-guarded, so the pool is race-free by construction — the
/// TSan wall runs the parallel differential tests over it.
///
/// Tasks are submitted through a TaskGroup, never directly: the group is
/// the join. TaskGroup::Wait() first *helps* — it pulls the group's own
/// not-yet-started tasks out of the deques and runs them on the calling
/// thread — and only then blocks for tasks already running elsewhere. The
/// helping step is what makes nested parallelism (a pool task that itself
/// fans out, e.g. a parallel Freeze inside a parallel load) deadlock-free:
/// a waiter always makes progress on its own work even when every pool
/// worker is busy or the pool is smaller than the fan-out.
///
/// Cancellation contract (same as CancellableChunks): the pool never
/// observes ExecContexts itself — task *bodies* poll and return early, so a
/// cancelled run's tasks finish fast and Wait() falls through its join
/// rather than blocking on work that will never complete.
class ThreadPool {
 public:
  /// A pool with `num_threads` workers (0 = hardware concurrency, min 1).
  explicit ThreadPool(uint32_t num_threads);

  /// Stops the workers and joins them. Outstanding tasks are completed
  /// first (TaskGroup waits make this moot in practice).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, created on first use with one worker per
  /// hardware thread. Never destroyed (intentionally leaked) so worker
  /// threads can never race static destruction at exit.
  static ThreadPool& Shared();

  uint32_t size() const { return static_cast<uint32_t>(workers_.size()); }

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  /// Enqueues one task (round-robin across worker deques) and wakes a
  /// sleeper. Only TaskGroup::Submit calls this.
  void Submit(Task task);

  /// Dequeues and runs one task: own deque back first, then steal scan.
  /// Returns false when every deque was empty.
  bool RunOne(uint32_t self);

  /// Dequeues and runs one task belonging to `group`, scanning every deque
  /// front to back. Returns false when none of `group`'s tasks are queued
  /// (they are all running or finished). This is Wait()'s helping step.
  bool RunOneFromGroup(TaskGroup* group);

  /// Pops one task: the caller's own deque from the back when `self` is a
  /// worker index, else steals the oldest task from any deque.
  bool Pop(uint32_t self, Task* out);

  void WorkerLoop(uint32_t self);
  void RunTask(Task task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> next_queue_{0};

  // Sleep/wake state: `pending_` counts queued (not yet dequeued) tasks and
  // is only touched under `idle_mu_`, so a submit can never slip between a
  // sleeper's predicate check and its wait.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  uint64_t pending_ = 0;
  bool stop_ = false;
};

/// A join scope for pool tasks: Submit() hands closures to the pool,
/// Wait() (also run by the destructor) returns once every submitted task
/// has finished — helping to run the group's still-queued tasks on the
/// calling thread first. Groups are cheap; create one per parallel region.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  /// Waits for all submitted tasks (so closures may safely capture the
  /// caller's stack by reference).
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Submit(std::function<void()> fn);

  /// Blocks until every task submitted so far has finished. Runs the
  /// group's queued tasks inline before sleeping (see ThreadPool docs).
  void Wait();

 private:
  friend class ThreadPool;

  /// Called by the pool after a task body returns.
  void Finish();

  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t outstanding_ = 0;
};

}  // namespace rdfsum::util

#endif  // RDFSUM_UTIL_THREAD_POOL_H_
