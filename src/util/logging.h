#ifndef RDFSUM_UTIL_LOGGING_H_
#define RDFSUM_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace rdfsum {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted to stderr (default kWarning, so the
/// library is silent in tests unless something is wrong).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rdfsum

#define RDFSUM_LOG(level)                                            \
  ::rdfsum::internal::LogMessage(::rdfsum::LogLevel::k##level, __FILE__, \
                                 __LINE__)

#endif  // RDFSUM_UTIL_LOGGING_H_
