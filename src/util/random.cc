#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace rdfsum {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Random::UniformRange(uint64_t lo, uint64_t hi) {
  return lo + Uniform(hi - lo + 1);
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Random::Zipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  if (s <= 0.0) return Uniform(n);
  // Approximate inverse CDF for the zipf distribution using the continuous
  // approximation H(x) ~ (x^(1-s) - 1) / (1 - s), accurate enough for
  // skewed workload generation.
  const double u = NextDouble();
  if (s == 1.0) {
    const double hn = std::log(static_cast<double>(n) + 1.0);
    const double x = std::exp(u * hn) - 1.0;
    uint64_t k = static_cast<uint64_t>(x);
    return std::min<uint64_t>(k, n - 1);
  }
  const double one_minus_s = 1.0 - s;
  const double hn =
      (std::pow(static_cast<double>(n) + 1.0, one_minus_s) - 1.0) /
      one_minus_s;
  const double x = std::pow(u * hn * one_minus_s + 1.0, 1.0 / one_minus_s);
  uint64_t k = x <= 1.0 ? 0 : static_cast<uint64_t>(x - 1.0);
  return std::min<uint64_t>(k, n - 1);
}

std::vector<uint64_t> Random::SampleDistinct(uint64_t n, uint64_t k) {
  k = std::min(n, k);
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 2 >= n) {
    // Partial Fisher-Yates over a materialized range.
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    for (uint64_t i = 0; i < k; ++i) {
      uint64_t j = i + Uniform(n - i);
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
    return out;
  }
  std::unordered_set<uint64_t> seen;
  while (out.size() < k) {
    uint64_t v = Uniform(n);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace rdfsum
