#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace rdfsum::util {

ThreadPool::ThreadPool(uint32_t num_threads) {
  uint32_t n = num_threads != 0
                   ? num_threads
                   : std::max(1u, std::thread::hardware_concurrency());
  queues_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Any task still queued here was submitted by a TaskGroup that never
  // waited — run it now so its Finish() fires and no waiter hangs.
  for (uint32_t i = 0; i < queues_.size(); ++i) {
    Task task;
    while (Pop(i, &task)) RunTask(std::move(task));
  }
}

ThreadPool& ThreadPool::Shared() {
  // Intentionally leaked: worker threads must never outlive their pool, and
  // static destruction order across translation units cannot guarantee that.
  static ThreadPool* pool = new ThreadPool(0);
  return *pool;
}

void ThreadPool::Submit(Task task) {
  const uint32_t q = static_cast<uint32_t>(
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size());
  // The pending count rises before the task becomes poppable: a dequeue's
  // matching decrement can then never run first and underflow the counter.
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  idle_cv_.notify_one();
}

bool ThreadPool::Pop(uint32_t self, Task* out) {
  const uint32_t n = static_cast<uint32_t>(queues_.size());
  // Own deque back (LIFO), then steal the oldest task from the others.
  if (self < n) {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *out = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  for (uint32_t i = 0; i < n; ++i) {
    if (i == self) continue;
    WorkerQueue& victim = *queues_[i];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::RunTask(Task task) {
  task.fn();
  task.group->Finish();
}

bool ThreadPool::RunOne(uint32_t self) {
  Task task;
  if (!Pop(self, &task)) return false;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    --pending_;
  }
  RunTask(std::move(task));
  return true;
}

bool ThreadPool::RunOneFromGroup(TaskGroup* group) {
  Task task;
  bool found = false;
  for (auto& queue : queues_) {
    std::lock_guard<std::mutex> lock(queue->mu);
    for (auto it = queue->tasks.begin(); it != queue->tasks.end(); ++it) {
      if (it->group == group) {
        task = std::move(*it);
        queue->tasks.erase(it);
        found = true;
        break;
      }
    }
    if (found) break;
  }
  if (!found) return false;
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    --pending_;
  }
  RunTask(std::move(task));
  return true;
}

void ThreadPool::WorkerLoop(uint32_t self) {
  for (;;) {
    if (RunOne(self)) continue;
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
    if (stop_ && pending_ == 0) return;
  }
}

void TaskGroup::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
  }
  pool_.Submit(ThreadPool::Task{std::move(fn), this});
}

void TaskGroup::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--outstanding_ == 0) cv_.notify_all();
}

void TaskGroup::Wait() {
  // Helping step: run our own queued tasks inline. Everything this leaves
  // behind is already running on some worker, so the blocking wait below is
  // guaranteed to terminate (task bodies poll cancellation and fall
  // through — they never block indefinitely).
  while (pool_.RunOneFromGroup(this)) {
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return outstanding_ == 0; });
}

}  // namespace rdfsum::util
