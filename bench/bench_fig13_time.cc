// Reproduces Figure 13: summarization time against input size, for the four
// summary kinds. The paper (Java + PostgreSQL, 10M-100M triples) reports
// W and S within 8 minutes, TS up to ~16 minutes and TW up to ~32 minutes,
// with near-linear growth. Offline and in-memory our absolute numbers are
// milliseconds; the shapes to check are (a) near-linear scaling and (b) the
// typed summaries costing more than the type-first ones.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "summary/summarizer.h"
#include "util/csv.h"
#include "util/timer.h"

namespace rdfsum {
namespace {

using bench::BenchScales;
using bench::CachedBsbm;
using bench::Num;
using summary::Summarize;
using summary::SummaryKind;

void PrintFigure13() {
  TablePrinter table({"triples", "Weak (ms)", "Strong (ms)", "TypedWeak (ms)",
                      "TypedStrong (ms)"});
  for (uint64_t scale : BenchScales()) {
    const Graph& g = CachedBsbm(scale);
    std::vector<std::string> row{Num(g.NumTriples())};
    for (SummaryKind kind :
         {SummaryKind::kWeak, SummaryKind::kStrong, SummaryKind::kTypedWeak,
          SummaryKind::kTypedStrong}) {
      // Best of three runs, like a steady-state measurement.
      double best = 1e100;
      for (int rep = 0; rep < 3; ++rep) {
        Timer timer;
        auto r = Summarize(g, kind);
        benchmark::DoNotOptimize(r);
        best = std::min(best, timer.ElapsedSeconds());
      }
      row.push_back(FormatDouble(best * 1000.0, 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout, "Figure 13: summarization time vs input size");
  std::cout.flush();
}

void BM_Summarize(benchmark::State& state, SummaryKind kind) {
  const Graph& g = CachedBsbm(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto r = Summarize(g, kind);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumTriples()));
  state.counters["triples"] = static_cast<double>(g.NumTriples());
}

BENCHMARK_CAPTURE(BM_Summarize, weak, SummaryKind::kWeak)
    ->Arg(50'000)
    ->Arg(250'000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Summarize, strong, SummaryKind::kStrong)
    ->Arg(50'000)
    ->Arg(250'000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Summarize, typed_weak, SummaryKind::kTypedWeak)
    ->Arg(50'000)
    ->Arg(250'000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Summarize, typed_strong, SummaryKind::kTypedStrong)
    ->Arg(50'000)
    ->Arg(250'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rdfsum

int main(int argc, char** argv) {
  rdfsum::PrintFigure13();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
