// Measures the practical payoff of Propositions 5/8 (weak/strong summary
// completeness): W(G∞) can be computed as W((W(G))∞), i.e. by saturating the
// tiny summary instead of the full graph. This bench compares
//   direct   : Summarize(Saturate(G))
//   shortcut : Summarize(Saturate(Summarize(G)))
// and verifies both produce isomorphic summaries.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "reasoner/saturation.h"
#include "summary/isomorphism.h"
#include "summary/summarizer.h"
#include "util/csv.h"
#include "util/timer.h"

namespace rdfsum {
namespace {

using bench::BenchScales;
using bench::CachedBsbm;
using bench::Num;
using summary::AreSummariesIsomorphic;
using summary::Summarize;
using summary::SummaryKind;
using summary::SummaryKindName;

void PrintShortcutComparison() {
  TablePrinter table({"triples", "kind", "direct (ms)", "shortcut (ms)",
                      "speedup", "isomorphic"});
  for (uint64_t scale : BenchScales()) {
    const Graph& g = CachedBsbm(scale);
    for (SummaryKind kind : {SummaryKind::kWeak, SummaryKind::kStrong}) {
      Timer t1;
      Graph g_inf = reasoner::Saturate(g);
      auto direct = Summarize(g_inf, kind);
      double direct_s = t1.ElapsedSeconds();

      Timer t2;
      auto shortcut = summary::SummarizeSaturatedViaShortcut(g, kind);
      double shortcut_s = t2.ElapsedSeconds();

      bool iso = AreSummariesIsomorphic(direct.graph, shortcut.graph);
      table.AddRow({Num(g.NumTriples()), SummaryKindName(kind),
                    FormatDouble(direct_s * 1e3, 1),
                    FormatDouble(shortcut_s * 1e3, 1),
                    FormatDouble(direct_s / shortcut_s, 2) + "x",
                    iso ? "yes" : "NO (bug!)"});
    }
  }
  table.Print(std::cout,
              "Propositions 5/8: summarize-then-saturate shortcut");
  std::cout.flush();
}

void BM_DirectSaturateThenSummarize(benchmark::State& state) {
  const Graph& g = CachedBsbm(250'000);
  for (auto _ : state) {
    Graph g_inf = reasoner::Saturate(g);
    auto r = Summarize(g_inf, SummaryKind::kWeak);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DirectSaturateThenSummarize)->Unit(benchmark::kMillisecond);

void BM_ShortcutSummarizeSaturateSummarize(benchmark::State& state) {
  const Graph& g = CachedBsbm(250'000);
  for (auto _ : state) {
    auto r = summary::SummarizeSaturatedViaShortcut(g, SummaryKind::kWeak);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ShortcutSummarizeSaturateSummarize)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rdfsum

int main(int argc, char** argv) {
  rdfsum::PrintShortcutComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
