// The serving daemon measured end to end over its wire protocol: qps and
// client-observed latency percentiles (p50/p99) for 1/4/8 concurrent client
// threads, with the plan cache on vs. off. Results land in BENCH_serve.json
// (override the path with RDFSUM_BENCH_JSON); qps records are requests per
// second — dimensionless despite the file's "seconds" unit label — while the
// p50/p99 records are per-request wall seconds.
//
// The workload is the one the plan cache exists for: a stream of same-shape
// snowflake queries whose constants rotate per request, planned in summary
// mode. A cache miss pays summary-estimated join ordering on every request;
// a hit re-instantiates the memoized skeleton and goes straight to
// execution, so cache-on should win by a wide margin. main() exits non-zero
// if it does not — CI's bench gate runs this binary and then re-checks the
// qps relationship in the JSON.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "query/plan.h"
#include "server/client.h"
#include "server/server.h"
#include "store/mmap_store.h"
#include "util/csv.h"
#include "util/timer.h"

namespace rdfsum {
namespace {

using bench::Num;
using server::Client;
using server::QueryRequest;
using server::Server;
using server::ServerOptions;

constexpr int kClientSweeps[] = {1, 4, 8};
constexpr int kWarmupPerThread = 8;
constexpr int kRequestsPerThread = 120;

/// Same-shape snowflake (the bench_query shape), anchored at a rotating
/// producer so every request carries different constants but normalizes to
/// one plan-cache key.
std::string SnowflakeQuery(int i) {
  return "PREFIX b: <http://bsbm.example.org/>\n"
         "SELECT ?r ?price WHERE { ?r b:reviewFor ?p . ?r b:reviewer ?x . "
         "?x b:country ?c . ?o b:offerProduct ?p . ?o b:price ?price . "
         "?p b:producer <http://bsbm.example.org/producer/Producer" +
         std::to_string(i % 8) + "> }";
}

struct SweepResult {
  double qps = 0;
  double p50 = 0;
  double p99 = 0;
  uint64_t rows = 0;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0;
  std::sort(sorted->begin(), sorted->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted->size()));
  if (idx >= sorted->size()) idx = sorted->size() - 1;
  return (*sorted)[idx];
}

/// Drives `threads` clients against the server, each issuing
/// kRequestsPerThread timed summary-mode queries after a short warmup.
/// Returns aggregate qps and cross-thread latency percentiles.
bool RunSweep(uint16_t port, int threads, SweepResult* out) {
  std::vector<std::vector<double>> latencies(threads);
  std::vector<uint64_t> rows(threads, 0);
  std::vector<bool> failed(threads, false);
  QueryRequest req;
  req.planner = static_cast<uint8_t>(query::PlannerMode::kSummary);

  auto worker = [&](int tid) {
    auto client = Client::Connect("127.0.0.1", port);
    if (!client.ok()) {
      failed[tid] = true;
      return;
    }
    auto run_one = [&](int i, bool timed) {
      Timer t;
      uint64_t n = 0;
      Status st = (*client)->Query(
          SnowflakeQuery(tid * kRequestsPerThread + i), req,
          [](const std::vector<std::string>&) { return true; }, &n);
      if (!st.ok()) {
        failed[tid] = true;
        return;
      }
      if (timed) {
        latencies[tid].push_back(t.ElapsedSeconds());
        rows[tid] += n;
      }
    };
    for (int i = 0; i < kWarmupPerThread && !failed[tid]; ++i) {
      run_one(i, /*timed=*/false);
    }
    for (int i = 0; i < kRequestsPerThread && !failed[tid]; ++i) {
      run_one(i, /*timed=*/true);
    }
  };

  Timer wall;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();
  double elapsed = wall.ElapsedSeconds();

  std::vector<double> all;
  for (int t = 0; t < threads; ++t) {
    if (failed[t]) return false;
    all.insert(all.end(), latencies[t].begin(), latencies[t].end());
    out->rows += rows[t];
  }
  out->qps = static_cast<double>(all.size()) / std::max(1e-9, elapsed);
  out->p50 = Percentile(&all, 0.50);
  out->p99 = Percentile(&all, 0.99);
  return true;
}

bool PrintServeBench() {
  // One modest image: the wire/planning overheads under test are
  // per-request, not per-triple, so 50k triples is plenty of graph.
  uint64_t scale = 50'000;
  if (const char* env = std::getenv("RDFSUM_BENCH_MAX_TRIPLES")) {
    scale = std::min<uint64_t>(scale, std::strtoull(env, nullptr, 10));
  }
  const Graph& g = bench::CachedBsbm(scale);
  const char* tmp = std::getenv("TMPDIR");
  const std::string image =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/bench_serve.rsb";
  Status frozen = store::FreezeGraphToFile(g, image);
  if (!frozen.ok()) {
    std::cerr << "bench_serve: freeze failed: " << frozen.ToString() << "\n";
    return false;
  }

  bench::BenchJson json("bench_serve");
  json.MetaInt("hardware_concurrency", std::thread::hardware_concurrency());
  TablePrinter table({"clients", "plan cache", "qps", "p50 (ms)", "p99 (ms)",
                      "cache hit rate"});
  // qps[threads][cache_on] for the final on-beats-off check.
  std::vector<std::vector<double>> qps(kClientSweeps[2] + 1,
                                       std::vector<double>(2, 0));

  for (bool cache_on : {false, true}) {
    ServerOptions options;
    options.num_workers = 8;  // >= the widest client sweep: never queue
    options.queue_depth = 16;
    options.plan_cache = cache_on;
    Server server;
    Status started = server.Start(image, options);
    if (!started.ok()) {
      std::cerr << "bench_serve: start failed: " << started.ToString() << "\n";
      return false;
    }
    for (int threads : kClientSweeps) {
      SweepResult r;
      if (!RunSweep(server.port(), threads, &r)) {
        std::cerr << "bench_serve: sweep failed (clients=" << threads
                  << ", cache=" << (cache_on ? "on" : "off") << ")\n";
        server.Stop();
        server.Wait();
        return false;
      }
      qps[threads][cache_on ? 1 : 0] = r.qps;
      const std::string suffix = "_c" + std::to_string(threads) +
                                 (cache_on ? "_cacheon" : "_cacheoff");
      json.Record("serve_qps" + suffix, g.NumTriples(), r.qps);
      json.Record("serve_p50" + suffix, g.NumTriples(), r.p50);
      json.Record("serve_p99" + suffix, g.NumTriples(), r.p99);

      std::string hit_rate = "off";
      if (cache_on) {
        auto stats_client = Client::Connect("127.0.0.1", server.port());
        if (stats_client.ok()) {
          auto text = (*stats_client)->Stats();
          if (text.ok()) {
            uint64_t hits = 0, misses = 0;
            size_t m = text->find("plan_cache_misses: ");
            if (m != std::string::npos) {
              misses = std::strtoull(text->c_str() + m + 19, nullptr, 10);
            }
            size_t h = text->find("plan_cache_hits: ");
            if (h != std::string::npos) {
              hits = std::strtoull(text->c_str() + h + 17, nullptr, 10);
            }
            if (hits + misses > 0) {
              hit_rate = FormatDouble(
                  100.0 * static_cast<double>(hits) /
                      static_cast<double>(hits + misses),
                  1) + "%";
            }
          }
        }
      }
      table.AddRow({std::to_string(threads), cache_on ? "on" : "off",
                    FormatDouble(r.qps, 0), FormatDouble(r.p50 * 1e3, 3),
                    FormatDouble(r.p99 * 1e3, 3), hit_rate});
    }
    server.Stop();
    server.Wait();
  }

  table.Print(std::cout,
              "Serving daemon over the wire: summary-planned same-shape "
              "queries, rotating constants (" + Num(g.NumTriples()) +
              " triples)");

  const char* path = std::getenv("RDFSUM_BENCH_JSON");
  std::string out = path != nullptr ? path : "BENCH_serve.json";
  if (json.WriteFile(out)) {
    std::cout << "wrote " << out << "\n";
  } else {
    std::cerr << "failed to write " << out << "\n";
  }

  bool on_wins = true;
  for (int threads : kClientSweeps) {
    if (qps[threads][1] <= qps[threads][0]) {
      std::cerr << "bench_serve: plan cache ON did not beat OFF at "
                << threads << " clients (" << qps[threads][1] << " vs "
                << qps[threads][0] << " qps)\n";
      on_wins = false;
    }
  }
  std::remove(image.c_str());
  return on_wins;
}

}  // namespace
}  // namespace rdfsum

int main() { return rdfsum::PrintServeBench() ? 0 : 1; }
