// The serving daemon measured end to end over its wire protocol: qps and
// client-observed latency percentiles (p50/p99) for 1/4/8 concurrent client
// threads, with the plan cache on vs. off. Results land in BENCH_serve.json
// (override the path with RDFSUM_BENCH_JSON); qps records are requests per
// second — dimensionless despite the file's "seconds" unit label — while the
// p50/p99 records are per-request wall seconds.
//
// The workload is the one the plan cache exists for: a stream of same-shape
// snowflake queries whose constants rotate per request, planned in summary
// mode. A cache miss pays summary-estimated join ordering on every request;
// a hit re-instantiates the memoized skeleton and goes straight to
// execution, so cache-on should win by a wide margin. main() exits non-zero
// if it does not — CI's bench gate runs this binary and then re-checks the
// qps relationship in the JSON.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "query/plan.h"
#include "server/client.h"
#include "server/server.h"
#include "store/mmap_store.h"
#include "util/csv.h"
#include "util/timer.h"

namespace rdfsum {
namespace {

using bench::Num;
using server::Client;
using server::QueryRequest;
using server::Server;
using server::ServerOptions;

constexpr int kClientSweeps[] = {1, 4, 8};
constexpr int kWarmupPerThread = 8;
constexpr int kRequestsPerThread = 120;

/// Same-shape snowflake (the bench_query shape), anchored at a rotating
/// producer so every request carries different constants but normalizes to
/// one plan-cache key.
std::string SnowflakeQuery(int i) {
  return "PREFIX b: <http://bsbm.example.org/>\n"
         "SELECT ?r ?price WHERE { ?r b:reviewFor ?p . ?r b:reviewer ?x . "
         "?x b:country ?c . ?o b:offerProduct ?p . ?o b:price ?price . "
         "?p b:producer <http://bsbm.example.org/producer/Producer" +
         std::to_string(i % 8) + "> }";
}

struct SweepResult {
  double qps = 0;
  double p50 = 0;
  double p99 = 0;
  uint64_t rows = 0;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0;
  std::sort(sorted->begin(), sorted->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted->size()));
  if (idx >= sorted->size()) idx = sorted->size() - 1;
  return (*sorted)[idx];
}

/// Drives `threads` clients against the server, each issuing
/// kRequestsPerThread timed summary-mode queries after a short warmup.
/// Returns aggregate qps and cross-thread latency percentiles.
bool RunSweep(uint16_t port, int threads, SweepResult* out) {
  std::vector<std::vector<double>> latencies(threads);
  std::vector<uint64_t> rows(threads, 0);
  std::vector<bool> failed(threads, false);
  QueryRequest req;
  req.planner = static_cast<uint8_t>(query::PlannerMode::kSummary);

  auto worker = [&](int tid) {
    auto client = Client::Connect("127.0.0.1", port);
    if (!client.ok()) {
      failed[tid] = true;
      return;
    }
    auto run_one = [&](int i, bool timed) {
      Timer t;
      uint64_t n = 0;
      Status st = (*client)->Query(
          SnowflakeQuery(tid * kRequestsPerThread + i), req,
          [](const std::vector<std::string>&) { return true; }, &n);
      if (!st.ok()) {
        failed[tid] = true;
        return;
      }
      if (timed) {
        latencies[tid].push_back(t.ElapsedSeconds());
        rows[tid] += n;
      }
    };
    for (int i = 0; i < kWarmupPerThread && !failed[tid]; ++i) {
      run_one(i, /*timed=*/false);
    }
    for (int i = 0; i < kRequestsPerThread && !failed[tid]; ++i) {
      run_one(i, /*timed=*/true);
    }
  };

  Timer wall;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();
  double elapsed = wall.ElapsedSeconds();

  std::vector<double> all;
  for (int t = 0; t < threads; ++t) {
    if (failed[t]) return false;
    all.insert(all.end(), latencies[t].begin(), latencies[t].end());
    out->rows += rows[t];
  }
  out->qps = static_cast<double>(all.size()) / std::max(1e-9, elapsed);
  out->p50 = Percentile(&all, 0.50);
  out->p99 = Percentile(&all, 0.99);
  return true;
}

/// Unanchored snowflake (no producer constant): the heavy per-request
/// workload for the parallelism sweep. Naive-planned so the driving scan is
/// the reviewFor range — at the sweep's 200k-triple image that clears the
/// executor's fan-out gate; under RDFSUM_BENCH_MAX_TRIPLES caps it may not,
/// in which case the sweep still measures the wire + admission-control path
/// with the fan-out gate (correctly) refusing.
std::string HeavySnowflakeQuery() {
  return "PREFIX b: <http://bsbm.example.org/>\n"
         "SELECT ?r ?price WHERE { ?r b:reviewFor ?p . ?r b:reviewer ?x . "
         "?x b:country ?c . ?o b:offerProduct ?p . ?o b:price ?price }";
}

/// Per-request parallelism over the wire (protocol 1.1): one client issues
/// heavy queries at req.parallelism in {1, 4, 8} against a server with
/// spare parallel slots, then a mixed sweep runs heavy parallel and cheap
/// anchored traffic together. Row counts must be identical at every
/// parallelism (the wire carries the same byte stream); latency is recorded,
/// not gated — a 1-core container serializes the fan-out anyway.
bool RunParallelServeBench(bench::BenchJson* json) {
  uint64_t scale = 200'000;
  if (const char* env = std::getenv("RDFSUM_BENCH_MAX_TRIPLES")) {
    scale = std::min<uint64_t>(scale, std::strtoull(env, nullptr, 10));
  }
  const Graph& g = bench::CachedBsbm(scale);
  const char* tmp = std::getenv("TMPDIR");
  const std::string image =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/bench_serve_par.rsb";
  Status frozen = store::FreezeGraphToFile(g, image);
  if (!frozen.ok()) {
    std::cerr << "bench_serve: par freeze failed: " << frozen.ToString()
              << "\n";
    return false;
  }

  ServerOptions options;
  options.num_workers = 4;
  options.queue_depth = 16;
  options.max_parallelism = 8;
  Server server;
  Status started = server.Start(image, options);
  if (!started.ok()) {
    std::cerr << "bench_serve: par start failed: " << started.ToString()
              << "\n";
    return false;
  }

  TablePrinter table(
      {"workload", "parallelism", "qps", "p50 (ms)", "p99 (ms)", "rows/req"});
  bool ok = true;
  uint64_t rows_at_p1 = 0;
  constexpr int kHeavyWarmup = 2;
  constexpr int kHeavyRequests = 12;
  for (uint32_t par : {1u, 4u, 8u}) {
    auto client = Client::Connect("127.0.0.1", server.port());
    if (!client.ok()) {
      ok = false;
      break;
    }
    QueryRequest req;
    req.planner = 0;  // naive: the driving scan is the reviewFor range
    req.parallelism = par;
    std::vector<double> lat;
    uint64_t rows = 0;
    Timer wall;
    for (int i = 0; i < kHeavyWarmup + kHeavyRequests; ++i) {
      Timer t;
      uint64_t n = 0;
      Status st = (*client)->Query(
          HeavySnowflakeQuery(), req,
          [](const std::vector<std::string>&) { return true; }, &n);
      if (!st.ok()) {
        std::cerr << "bench_serve: heavy query failed (par=" << par
                  << "): " << st.ToString() << "\n";
        ok = false;
        break;
      }
      if (i >= kHeavyWarmup) {
        lat.push_back(t.ElapsedSeconds());
        rows = n;
      }
    }
    if (!ok) break;
    if (par == 1) {
      rows_at_p1 = rows;
    } else if (rows != rows_at_p1) {
      std::cerr << "bench_serve: parallel row count diverged (par=" << par
                << ": " << rows << " vs " << rows_at_p1 << ")\n";
      ok = false;
      break;
    }
    const double elapsed = wall.ElapsedSeconds();
    const double qps =
        static_cast<double>(lat.size()) / std::max(1e-9, elapsed);
    const std::string suffix = "_p" + std::to_string(par);
    json->Record("serve_par_qps" + suffix, g.NumTriples(), qps);
    json->Record("serve_par_p50" + suffix, g.NumTriples(),
                 Percentile(&lat, 0.50));
    json->Record("serve_par_p99" + suffix, g.NumTriples(),
                 Percentile(&lat, 0.99));
    table.AddRow({"heavy", std::to_string(par), FormatDouble(qps, 1),
                  FormatDouble(Percentile(&lat, 0.50) * 1e3, 3),
                  FormatDouble(Percentile(&lat, 0.99) * 1e3, 3),
                  std::to_string(rows)});
  }

  // Mixed traffic: two heavy parallel clients and two cheap anchored
  // clients at once — admission control must keep cheap requests moving
  // while heavy ones hold the spare slots.
  if (ok) {
    std::vector<double> cheap_lat;
    std::vector<bool> failed(4, false);
    std::mutex mu;
    auto worker = [&](int tid) {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failed[tid] = true;
        return;
      }
      const bool heavy = tid < 2;
      QueryRequest req;
      req.planner = heavy ? 0 : static_cast<uint8_t>(
                                    query::PlannerMode::kSummary);
      req.parallelism = heavy ? 4 : 1;
      const int n_requests = heavy ? 6 : 40;
      for (int i = 0; i < n_requests; ++i) {
        Timer t;
        uint64_t n = 0;
        Status st = (*client)->Query(
            heavy ? HeavySnowflakeQuery() : SnowflakeQuery(i),
            req, [](const std::vector<std::string>&) { return true; }, &n);
        if (!st.ok()) {
          failed[tid] = true;
          return;
        }
        if (!heavy) {
          std::lock_guard<std::mutex> lock(mu);
          cheap_lat.push_back(t.ElapsedSeconds());
        }
      }
    };
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) pool.emplace_back(worker, t);
    for (std::thread& t : pool) t.join();
    for (bool f : failed) ok = ok && !f;
    if (ok) {
      json->Record("serve_par_mixed_cheap_p99", g.NumTriples(),
                   Percentile(&cheap_lat, 0.99));
      table.AddRow({"mixed cheap", "1", "-",
                    FormatDouble(Percentile(&cheap_lat, 0.50) * 1e3, 3),
                    FormatDouble(Percentile(&cheap_lat, 0.99) * 1e3, 3),
                    "-"});
    } else {
      std::cerr << "bench_serve: mixed sweep failed\n";
    }
  }

  // The admission-control counters must reflect the sweep: every granted
  // fan-out shows up in parallel_queries.
  if (ok) {
    auto stats_client = Client::Connect("127.0.0.1", server.port());
    if (stats_client.ok()) {
      auto text = (*stats_client)->Stats();
      if (text.ok()) {
        size_t pq = text->find("parallel_queries: ");
        if (pq != std::string::npos) {
          json->Record("serve_par_granted", g.NumTriples(),
                       static_cast<double>(std::strtoull(
                           text->c_str() + pq + 18, nullptr, 10)));
        }
      }
    }
  }

  table.Print(std::cout,
              "Per-request parallelism over the wire (protocol 1.1): heavy "
              "naive snowflakes at requested fan-out, then mixed with cheap "
              "anchored traffic (" + Num(g.NumTriples()) + " triples)");
  server.Stop();
  server.Wait();
  std::remove(image.c_str());
  return ok;
}

bool PrintServeBench() {
  // One modest image: the wire/planning overheads under test are
  // per-request, not per-triple, so 50k triples is plenty of graph.
  uint64_t scale = 50'000;
  if (const char* env = std::getenv("RDFSUM_BENCH_MAX_TRIPLES")) {
    scale = std::min<uint64_t>(scale, std::strtoull(env, nullptr, 10));
  }
  const Graph& g = bench::CachedBsbm(scale);
  const char* tmp = std::getenv("TMPDIR");
  const std::string image =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/bench_serve.rsb";
  Status frozen = store::FreezeGraphToFile(g, image);
  if (!frozen.ok()) {
    std::cerr << "bench_serve: freeze failed: " << frozen.ToString() << "\n";
    return false;
  }

  bench::BenchJson json("bench_serve");
  json.MetaInt("hardware_concurrency", std::thread::hardware_concurrency());
  TablePrinter table({"clients", "plan cache", "qps", "p50 (ms)", "p99 (ms)",
                      "cache hit rate"});
  // qps[threads][cache_on] for the final on-beats-off check.
  std::vector<std::vector<double>> qps(kClientSweeps[2] + 1,
                                       std::vector<double>(2, 0));

  for (bool cache_on : {false, true}) {
    ServerOptions options;
    options.num_workers = 8;  // >= the widest client sweep: never queue
    options.queue_depth = 16;
    options.plan_cache = cache_on;
    Server server;
    Status started = server.Start(image, options);
    if (!started.ok()) {
      std::cerr << "bench_serve: start failed: " << started.ToString() << "\n";
      return false;
    }
    for (int threads : kClientSweeps) {
      SweepResult r;
      if (!RunSweep(server.port(), threads, &r)) {
        std::cerr << "bench_serve: sweep failed (clients=" << threads
                  << ", cache=" << (cache_on ? "on" : "off") << ")\n";
        server.Stop();
        server.Wait();
        return false;
      }
      qps[threads][cache_on ? 1 : 0] = r.qps;
      const std::string suffix = "_c" + std::to_string(threads) +
                                 (cache_on ? "_cacheon" : "_cacheoff");
      json.Record("serve_qps" + suffix, g.NumTriples(), r.qps);
      json.Record("serve_p50" + suffix, g.NumTriples(), r.p50);
      json.Record("serve_p99" + suffix, g.NumTriples(), r.p99);

      std::string hit_rate = "off";
      if (cache_on) {
        auto stats_client = Client::Connect("127.0.0.1", server.port());
        if (stats_client.ok()) {
          auto text = (*stats_client)->Stats();
          if (text.ok()) {
            uint64_t hits = 0, misses = 0;
            size_t m = text->find("plan_cache_misses: ");
            if (m != std::string::npos) {
              misses = std::strtoull(text->c_str() + m + 19, nullptr, 10);
            }
            size_t h = text->find("plan_cache_hits: ");
            if (h != std::string::npos) {
              hits = std::strtoull(text->c_str() + h + 17, nullptr, 10);
            }
            if (hits + misses > 0) {
              hit_rate = FormatDouble(
                  100.0 * static_cast<double>(hits) /
                      static_cast<double>(hits + misses),
                  1) + "%";
            }
          }
        }
      }
      table.AddRow({std::to_string(threads), cache_on ? "on" : "off",
                    FormatDouble(r.qps, 0), FormatDouble(r.p50 * 1e3, 3),
                    FormatDouble(r.p99 * 1e3, 3), hit_rate});
    }
    server.Stop();
    server.Wait();
  }

  table.Print(std::cout,
              "Serving daemon over the wire: summary-planned same-shape "
              "queries, rotating constants (" + Num(g.NumTriples()) +
              " triples)");

  const bool par_ok = RunParallelServeBench(&json);

  const char* path = std::getenv("RDFSUM_BENCH_JSON");
  std::string out = path != nullptr ? path : "BENCH_serve.json";
  if (json.WriteFile(out)) {
    std::cout << "wrote " << out << "\n";
  } else {
    std::cerr << "failed to write " << out << "\n";
  }

  bool on_wins = true;
  for (int threads : kClientSweeps) {
    if (qps[threads][1] <= qps[threads][0]) {
      std::cerr << "bench_serve: plan cache ON did not beat OFF at "
                << threads << " clients (" << qps[threads][1] << " vs "
                << qps[threads][0] << " qps)\n";
      on_wins = false;
    }
  }
  std::remove(image.c_str());
  return on_wins && par_ok;
}

}  // namespace
}  // namespace rdfsum

int main() { return rdfsum::PrintServeBench() ? 0 : 1; }
