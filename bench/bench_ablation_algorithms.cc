// Design ablations called out in DESIGN.md:
//   1. Batch union-find weak summarizer (our production path) vs the paper's
//      incremental Algorithms 1-3 (§6.2).
//   2. Within the incremental algorithm, the "merge the node with fewer
//      edges" heuristic vs arbitrary merge order.
// Both variants must produce isomorphic summaries; the interesting output is
// the cost difference.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "summary/incremental_weak.h"
#include "summary/isomorphism.h"
#include "summary/summarizer.h"
#include "util/csv.h"
#include "util/timer.h"

namespace rdfsum {
namespace {

using bench::BenchScales;
using bench::CachedBsbm;
using bench::Num;
using summary::IncrementalWeakOptions;
using summary::IncrementalWeakSummarize;
using summary::Summarize;
using summary::SummaryKind;

void PrintAblation() {
  TablePrinter table({"triples", "batch UF (ms)", "incremental (ms)",
                      "incr. arbitrary-merge (ms)", "isomorphic"});
  for (uint64_t scale : BenchScales()) {
    const Graph& g = CachedBsbm(scale);

    Timer t1;
    auto batch = Summarize(g, SummaryKind::kWeak);
    double batch_s = t1.ElapsedSeconds();

    Timer t2;
    auto incremental = IncrementalWeakSummarize(g);
    double incr_s = t2.ElapsedSeconds();

    IncrementalWeakOptions arbitrary;
    arbitrary.merge_smaller_node = false;
    Timer t3;
    auto incr_arbitrary = IncrementalWeakSummarize(g, arbitrary);
    double arb_s = t3.ElapsedSeconds();

    bool iso =
        summary::AreSummariesIsomorphic(batch.graph, incremental.graph) &&
        summary::AreSummariesIsomorphic(batch.graph, incr_arbitrary.graph);
    table.AddRow({Num(g.NumTriples()), FormatDouble(batch_s * 1e3, 1),
                  FormatDouble(incr_s * 1e3, 1), FormatDouble(arb_s * 1e3, 1),
                  iso ? "yes" : "NO (bug!)"});
  }
  table.Print(std::cout,
              "Ablation: weak summary algorithms (batch vs Algorithms 1-3)");
  std::cout.flush();
}

void BM_BatchWeak(benchmark::State& state) {
  const Graph& g = CachedBsbm(250'000);
  for (auto _ : state) {
    auto r = Summarize(g, SummaryKind::kWeak);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BatchWeak)->Unit(benchmark::kMillisecond);

void BM_IncrementalWeak(benchmark::State& state) {
  const Graph& g = CachedBsbm(250'000);
  for (auto _ : state) {
    auto r = IncrementalWeakSummarize(g);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IncrementalWeak)->Unit(benchmark::kMillisecond);

void BM_IncrementalWeakArbitraryMerge(benchmark::State& state) {
  const Graph& g = CachedBsbm(250'000);
  IncrementalWeakOptions options;
  options.merge_smaller_node = false;
  for (auto _ : state) {
    auto r = IncrementalWeakSummarize(g, options);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IncrementalWeakArbitraryMerge)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rdfsum

int main(int argc, char** argv) {
  rdfsum::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
