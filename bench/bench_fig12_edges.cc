// Reproduces Figure 12: the number of data edges (top) and of all edges
// (bottom) in the four BSBM summaries. The paper highlights that the largest
// summary stays at most 0.028x of the input ("at most 28210 edges" for
// 10-100M triples) — the edge counts here should stay a few orders of
// magnitude below the triple count, with TW/TS above W/S.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "summary/node_partition.h"
#include "summary/summarizer.h"
#include "util/csv.h"

namespace rdfsum {
namespace {

using bench::BenchScales;
using bench::CachedBsbm;
using bench::Num;
using summary::Summarize;
using summary::SummaryKind;
using summary::SummaryResult;

void PrintFigure12() {
  TablePrinter data_edges(
      {"triples", "Weak", "Strong", "TypedWeak", "TypedStrong"});
  TablePrinter all_edges(
      {"triples", "Weak", "Strong", "TypedWeak", "TypedStrong", "max/input"});
  for (uint64_t scale : BenchScales()) {
    const Graph& g = CachedBsbm(scale);
    SummaryResult w = Summarize(g, SummaryKind::kWeak);
    SummaryResult s = Summarize(g, SummaryKind::kStrong);
    SummaryResult tw = Summarize(g, SummaryKind::kTypedWeak);
    SummaryResult ts = Summarize(g, SummaryKind::kTypedStrong);
    data_edges.AddRow({Num(g.NumTriples()), Num(w.stats.num_data_edges),
                       Num(s.stats.num_data_edges),
                       Num(tw.stats.num_data_edges),
                       Num(ts.stats.num_data_edges)});
    uint64_t max_edges =
        std::max({w.stats.num_all_edges, s.stats.num_all_edges,
                  tw.stats.num_all_edges, ts.stats.num_all_edges});
    double ratio = static_cast<double>(max_edges) /
                   static_cast<double>(g.NumTriples());
    all_edges.AddRow({Num(g.NumTriples()), Num(w.stats.num_all_edges),
                      Num(s.stats.num_all_edges), Num(tw.stats.num_all_edges),
                      Num(ts.stats.num_all_edges), FormatDouble(ratio, 5)});
  }
  data_edges.Print(std::cout,
                   "Figure 12 (top): data edges in BSBM summaries");
  all_edges.Print(std::cout,
                  "Figure 12 (bottom): all edges in BSBM summaries");
  std::cout.flush();
}

// Micro-benchmark: quotient construction alone (partition given), the edge
// emission half of the summarizer.
void BM_QuotientConstruction(benchmark::State& state) {
  const Graph& g = CachedBsbm(100'000);
  summary::NodePartition part = summary::ComputeWeakPartition(g);
  for (auto _ : state) {
    auto r = summary::QuotientByPartition(g, part, SummaryKind::kWeak).value();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumTriples()));
}
BENCHMARK(BM_QuotientConstruction)->Unit(benchmark::kMillisecond);

void BM_WeakPartitionOnly(benchmark::State& state) {
  const Graph& g = CachedBsbm(100'000);
  for (auto _ : state) {
    auto part = summary::ComputeWeakPartition(g);
    benchmark::DoNotOptimize(part);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumTriples()));
}
BENCHMARK(BM_WeakPartitionOnly)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rdfsum

int main(int argc, char** argv) {
  rdfsum::PrintFigure12();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
