// Probes Proposition 1 (RBGP representativeness) experimentally and
// measures the query-pruning payoff the paper motivates: deciding emptiness
// on the (tiny) summary instead of the full graph.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "query/evaluator.h"
#include "query/rbgp.h"
#include "reasoner/saturation.h"
#include "summary/property_checks.h"
#include "summary/summarizer.h"
#include "util/csv.h"
#include "util/timer.h"

namespace rdfsum {
namespace {

using bench::CachedBsbm;
using bench::Num;
using summary::Summarize;
using summary::SummaryKind;
using summary::SummaryKindName;

void PrintRepresentativeness() {
  const Graph& g = CachedBsbm(250'000);
  TablePrinter table(
      {"kind", "queries", "represented", "summary |H∞| edges"});
  for (SummaryKind kind : summary::kAllQuotientKinds) {
    auto report = summary::CheckRepresentativeness(
        g, kind, /*num_queries=*/100, /*max_patterns_per_query=*/4,
        /*seed=*/2025);
    auto h = Summarize(g, kind);
    Graph h_inf = reasoner::Saturate(h.graph);
    table.AddRow({SummaryKindName(kind), Num(report.queries),
                  Num(report.represented), Num(h_inf.NumTriples())});
  }
  table.Print(std::cout,
              "Proposition 1: RBGP queries non-empty on G∞ vs the summary");

  // Pruning speedup: emptiness checks on summary vs on full graph.
  Graph g_inf = reasoner::Saturate(g);
  auto w = Summarize(g, SummaryKind::kWeak);
  Graph w_inf = reasoner::Saturate(w.graph);
  query::BgpEvaluator on_graph(g_inf);
  query::BgpEvaluator on_summary(w_inf);

  Random rng(7);
  std::vector<query::BgpQuery> queries;
  for (int i = 0; i < 200; ++i) {
    auto q = query::GenerateRbgpQuery(g_inf, rng);
    if (!q.triples.empty()) queries.push_back(std::move(q));
  }
  Timer tg;
  size_t matched_graph = 0;
  for (const auto& q : queries) matched_graph += on_graph.ExistsMatch(q);
  double graph_s = tg.ElapsedSeconds();
  Timer ts;
  size_t matched_summary = 0;
  for (const auto& q : queries) matched_summary += on_summary.ExistsMatch(q);
  double summary_s = ts.ElapsedSeconds();

  TablePrinter prune({"target", "queries", "non-empty", "total (ms)"});
  prune.AddRow({"G∞", Num(queries.size()), Num(matched_graph),
                FormatDouble(graph_s * 1e3, 2)});
  prune.AddRow({"W(G)∞", Num(queries.size()), Num(matched_summary),
                FormatDouble(summary_s * 1e3, 2)});
  prune.Print(std::cout, "Emptiness-check cost: graph vs weak summary");
  std::cout.flush();
}

void BM_ExistsMatchOnGraph(benchmark::State& state) {
  const Graph& g = CachedBsbm(100'000);
  Graph g_inf = reasoner::Saturate(g);
  query::BgpEvaluator eval(g_inf);
  Random rng(3);
  auto q = query::GenerateRbgpQuery(g_inf, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.ExistsMatch(q));
  }
}
BENCHMARK(BM_ExistsMatchOnGraph)->Unit(benchmark::kMicrosecond);

void BM_ExistsMatchOnSummary(benchmark::State& state) {
  const Graph& g = CachedBsbm(100'000);
  Graph g_inf = reasoner::Saturate(g);
  auto w = Summarize(g, SummaryKind::kWeak);
  Graph w_inf = reasoner::Saturate(w.graph);
  query::BgpEvaluator eval(w_inf);
  Random rng(3);
  auto q = query::GenerateRbgpQuery(g_inf, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.ExistsMatch(q));
  }
}
BENCHMARK(BM_ExistsMatchOnSummary)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rdfsum

int main(int argc, char** argv) {
  rdfsum::PrintRepresentativeness();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
