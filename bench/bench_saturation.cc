// Substrate bench: RDFS saturation throughput and blow-up factor on BSBM
// (shallow hierarchy) and LUBM (deep hierarchy, heavier reasoning).

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "gen/lubm.h"
#include "reasoner/saturation.h"
#include "util/csv.h"
#include "util/timer.h"

namespace rdfsum {
namespace {

using bench::BenchScales;
using bench::CachedBsbm;
using bench::Num;
using reasoner::SaturationStats;

void PrintSaturation() {
  TablePrinter table({"dataset", "triples in", "triples out", "blowup",
                      "time (ms)", "Mtriples/s"});
  for (uint64_t scale : BenchScales()) {
    const Graph& g = CachedBsbm(scale);
    SaturationStats stats;
    Timer timer;
    Graph sat = reasoner::Saturate(g, &stats);
    double secs = timer.ElapsedSeconds();
    table.AddRow(
        {"bsbm", Num(stats.input_triples), Num(stats.output_triples),
         FormatDouble(static_cast<double>(stats.output_triples) /
                          static_cast<double>(stats.input_triples),
                      2),
         FormatDouble(secs * 1e3, 1),
         FormatDouble(static_cast<double>(stats.input_triples) / secs / 1e6,
                      2)});
  }
  for (uint64_t unis : {2ull, 8ull, 32ull}) {
    gen::LubmOptions opt;
    opt.num_universities = unis;
    Graph g = gen::GenerateLubm(opt);
    SaturationStats stats;
    Timer timer;
    Graph sat = reasoner::Saturate(g, &stats);
    double secs = timer.ElapsedSeconds();
    table.AddRow(
        {"lubm", Num(stats.input_triples), Num(stats.output_triples),
         FormatDouble(static_cast<double>(stats.output_triples) /
                          static_cast<double>(stats.input_triples),
                      2),
         FormatDouble(secs * 1e3, 1),
         FormatDouble(static_cast<double>(stats.input_triples) / secs / 1e6,
                      2)});
  }
  table.Print(std::cout, "Saturation (G -> G∞) throughput");
  std::cout.flush();
}

void BM_SaturateBsbm(benchmark::State& state) {
  const Graph& g = CachedBsbm(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    Graph sat = reasoner::Saturate(g);
    benchmark::DoNotOptimize(sat);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumTriples()));
}
BENCHMARK(BM_SaturateBsbm)
    ->Arg(50'000)
    ->Arg(250'000)
    ->Unit(benchmark::kMillisecond);

void BM_SaturateLubm(benchmark::State& state) {
  gen::LubmOptions opt;
  opt.num_universities = static_cast<uint64_t>(state.range(0));
  Graph g = gen::GenerateLubm(opt);
  for (auto _ : state) {
    Graph sat = reasoner::Saturate(g);
    benchmark::DoNotOptimize(sat);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumTriples()));
}
BENCHMARK(BM_SaturateLubm)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rdfsum

int main(int argc, char** argv) {
  rdfsum::PrintSaturation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
