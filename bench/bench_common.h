#ifndef RDFSUM_BENCH_BENCH_COMMON_H_
#define RDFSUM_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "gen/bsbm.h"
#include "rdf/graph.h"
#include "util/string_util.h"

namespace rdfsum::bench {

/// Benchmark scales in target triple counts. The paper sweeps BSBM from 10M
/// to 100M triples on a Xeon + PostgreSQL; in-process and offline we sweep
/// the same shape at 50k-1M (override the ceiling with
/// RDFSUM_BENCH_MAX_TRIPLES to go bigger on a beefier machine).
inline std::vector<uint64_t> BenchScales() {
  uint64_t max_triples = 1'000'000;
  if (const char* env = std::getenv("RDFSUM_BENCH_MAX_TRIPLES")) {
    max_triples = std::strtoull(env, nullptr, 10);
    if (max_triples < 50'000) max_triples = 50'000;
  }
  std::vector<uint64_t> scales;
  for (uint64_t s : {50'000ull, 100'000ull, 250'000ull, 500'000ull,
                     1'000'000ull, 2'000'000ull, 5'000'000ull}) {
    if (s <= max_triples) scales.push_back(s);
  }
  return scales;
}

/// Generates (and memoizes per process) the BSBM graph of ~`triples` size.
inline const Graph& CachedBsbm(uint64_t triples) {
  static std::map<uint64_t, Graph>* cache = new std::map<uint64_t, Graph>();
  auto it = cache->find(triples);
  if (it == cache->end()) {
    gen::BsbmOptions opt;
    opt.num_products = gen::BsbmProductsForTriples(triples);
    it = cache->emplace(triples, gen::GenerateBsbm(opt)).first;
  }
  return it->second;
}

inline std::string Num(uint64_t n) { return FormatWithCommas(n); }

/// Machine-readable results next to the human-readable tables: collects
/// (name, scale, seconds) wall-time records and writes them as a JSON file
/// (e.g. BENCH_substrate.json) so the perf trajectory can be tracked and
/// diffed across PRs.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void Record(const std::string& name, uint64_t scale, double seconds) {
    records_.push_back(Record_{name, scale, seconds, -1, -1});
  }

  /// Thread-sweep record: stores the thread count the row *requested* and
  /// the count the runtime actually spawned (after ResolveThreadCount
  /// resolves 0 to hardware_concurrency and clamps against work size and
  /// kMaxThreads — an explicit request is honored even beyond the core
  /// count, i.e. oversubscribed). Read next to the top-level
  /// hardware_concurrency: effective > cores means the row measured
  /// oversubscription, not scaling.
  void RecordThreads(const std::string& name, uint64_t scale, double seconds,
                     uint32_t requested, uint32_t effective) {
    records_.push_back(Record_{name, scale, seconds,
                               static_cast<int64_t>(requested),
                               static_cast<int64_t>(effective)});
  }

  /// Load-sweep record: a thread-sweep row that additionally carries the
  /// ingestion phase breakdown (chunk-parse wall, dictionary-merge/replay
  /// wall, Freeze wall, all in seconds) so load scaling can be attributed
  /// to the phase that moved across PRs.
  void RecordLoad(const std::string& name, uint64_t scale, double seconds,
                  uint32_t requested, uint32_t effective, double parse_seconds,
                  double intern_seconds, double freeze_seconds) {
    records_.push_back(Record_{name, scale, seconds,
                               static_cast<int64_t>(requested),
                               static_cast<int64_t>(effective), parse_seconds,
                               intern_seconds, freeze_seconds});
  }

  /// Adds a top-level integer metadata field (e.g. the producing machine's
  /// hardware_concurrency) — context for interpreting the results, kept out
  /// of the results array so per-name diffs across PRs stay clean.
  void MetaInt(const std::string& key, uint64_t value) {
    meta_.emplace_back(key, value);
  }

  /// Writes all records as JSON. Returns false on I/O failure.
  bool WriteFile(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"unit\": \"seconds\",\n",
                 bench_name_.c_str());
    for (const auto& [key, value] : meta_) {
      std::fprintf(f, "  \"%s\": %llu,\n", key.c_str(),
                   static_cast<unsigned long long>(value));
    }
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record_& r = records_[i];
      std::fprintf(f, "    {\"name\": \"%s\", \"scale\": %llu, \"seconds\": %.6f",
                   r.name.c_str(), static_cast<unsigned long long>(r.scale),
                   r.seconds);
      if (r.threads_requested >= 0) {
        std::fprintf(f,
                     ", \"threads_requested\": %lld, \"threads_effective\": %lld",
                     static_cast<long long>(r.threads_requested),
                     static_cast<long long>(r.threads_effective));
      }
      if (r.parse_seconds >= 0) {
        std::fprintf(f,
                     ", \"parse_seconds\": %.6f, \"intern_seconds\": %.6f"
                     ", \"freeze_seconds\": %.6f",
                     r.parse_seconds, r.intern_seconds, r.freeze_seconds);
      }
      std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Record_ {
    std::string name;
    uint64_t scale;
    double seconds;
    int64_t threads_requested;  // -1 = not a thread-sweep row
    int64_t threads_effective;
    double parse_seconds = -1;  // -1 = not a load row (phase breakdown absent)
    double intern_seconds = -1;
    double freeze_seconds = -1;
  };
  std::string bench_name_;
  std::vector<std::pair<std::string, uint64_t>> meta_;
  std::vector<Record_> records_;
};

}  // namespace rdfsum::bench

#endif  // RDFSUM_BENCH_BENCH_COMMON_H_
