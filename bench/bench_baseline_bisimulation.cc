// Baseline comparison from the paper's related work (§8): bisimulation-based
// structural indexes "grow exponentially with the neighborhood and can be as
// large as the input graph", which is why the paper builds clique-based
// quotients instead. This bench puts numbers on that claim: data-node counts
// of k-bisimulation at k = 1..4 against the four paper summaries, on BSBM.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "summary/dataguide.h"
#include "summary/summarizer.h"
#include "util/csv.h"

namespace rdfsum {
namespace {

using bench::BenchScales;
using bench::CachedBsbm;
using bench::Num;
using summary::Summarize;
using summary::SummaryKind;
using summary::SummaryOptions;
using summary::BuildStrongDataguide;
using summary::DataguideOptions;

void PrintBaseline() {
  TablePrinter table({"triples", "W", "TW", "bisim k=1", "bisim k=2",
                      "bisim k=4", "dataguide", "k=4 / W"});
  for (uint64_t scale : BenchScales()) {
    const Graph& g = CachedBsbm(scale);
    auto w = Summarize(g, SummaryKind::kWeak);
    auto tw = Summarize(g, SummaryKind::kTypedWeak);
    std::vector<uint64_t> bisim_nodes;
    for (uint32_t k : {1u, 2u, 4u}) {
      SummaryOptions options;
      options.bisimulation_depth = k;
      auto b = Summarize(g, SummaryKind::kBisimulation, options);
      bisim_nodes.push_back(b.stats.num_data_nodes);
    }
    // The Dataguide baseline ([10]): guard against powerset blow-up.
    DataguideOptions dgopt;
    dgopt.max_states = 2'000'000;
    auto guide = BuildStrongDataguide(g, dgopt);
    std::string guide_cell =
        guide.ok() ? Num(guide->num_states) : std::string("blow-up");
    table.AddRow(
        {Num(g.NumTriples()), Num(w.stats.num_data_nodes),
         Num(tw.stats.num_data_nodes), Num(bisim_nodes[0]),
         Num(bisim_nodes[1]), Num(bisim_nodes[2]), guide_cell,
         FormatDouble(static_cast<double>(bisim_nodes[2]) /
                          static_cast<double>(w.stats.num_data_nodes),
                      0) +
             "x"});
  }
  table.Print(std::cout,
              "Baselines (§8): k-bisimulation and Dataguide vs the paper's "
              "summaries (data nodes)");
  std::cout.flush();
}

void BM_Bisimulation(benchmark::State& state) {
  const Graph& g = CachedBsbm(100'000);
  SummaryOptions options;
  options.bisimulation_depth = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto r = Summarize(g, SummaryKind::kBisimulation, options);
    benchmark::DoNotOptimize(r);
  }
  state.counters["depth"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Bisimulation)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace rdfsum

int main(int argc, char** argv) {
  rdfsum::PrintBaseline();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
