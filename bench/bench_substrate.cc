// Substrate micro-benchmarks: the N-Triples parser/writer, the dictionary,
// the triple-table pattern scans the query evaluator builds on, and the
// DenseGraph dense-ID substrate.
//
// Besides the google-benchmark microbenches, main() runs a before/after
// partition sweep — reference (pre-substrate, hash-map indexed) vs current
// (DenseGraph) weak and strong partitions across the BSBM scales — and
// writes the wall times to BENCH_substrate.json for cross-PR tracking.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "io/ntriples_parser.h"
#include "io/ntriples_writer.h"
#include "rdf/dense_graph.h"
#include "store/mmap_store.h"
#include "store/triple_table.h"
#include "summary/node_partition.h"
#include "summary/reference_partition.h"
#include "util/random.h"
#include "util/timer.h"

namespace rdfsum {
namespace {

using bench::CachedBsbm;

void BM_NTriplesWrite(benchmark::State& state) {
  const Graph& g = CachedBsbm(100'000);
  for (auto _ : state) {
    std::string text = io::NTriplesWriter::ToString(g);
    benchmark::DoNotOptimize(text);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumTriples()));
}
BENCHMARK(BM_NTriplesWrite)->Unit(benchmark::kMillisecond);

void BM_NTriplesParse(benchmark::State& state) {
  const Graph& g = CachedBsbm(100'000);
  std::string text = io::NTriplesWriter::ToString(g);
  for (auto _ : state) {
    Graph parsed;
    io::ParseStats stats;
    auto st = io::NTriplesParser::ParseString(text, &parsed, &stats);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumTriples()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_NTriplesParse)->Unit(benchmark::kMillisecond);

void BM_DictionaryEncode(benchmark::State& state) {
  for (auto _ : state) {
    Dictionary dict;
    for (int i = 0; i < 10000; ++i) {
      dict.EncodeIri("http://bench.example.org/resource/" +
                     std::to_string(i % 4096));
    }
    benchmark::DoNotOptimize(dict);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_DictionaryEncode);

void BM_DenseGraphBuild(benchmark::State& state) {
  const Graph& g = CachedBsbm(250'000);
  for (auto _ : state) {
    DenseGraph dg(g);
    benchmark::DoNotOptimize(dg);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumTriples()));
}
BENCHMARK(BM_DenseGraphBuild)->Unit(benchmark::kMillisecond);

void BM_WeakPartition(benchmark::State& state) {
  const Graph& g = CachedBsbm(250'000);
  g.Dense();  // substrate built once per graph, outside the loop
  for (auto _ : state) {
    auto part = summary::ComputeWeakPartition(g);
    benchmark::DoNotOptimize(part);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumTriples()));
}
BENCHMARK(BM_WeakPartition)->Unit(benchmark::kMillisecond);

void BM_TripleTableFreeze(benchmark::State& state) {
  const Graph& g = CachedBsbm(250'000);
  std::vector<Triple> rows;
  g.ForEachTriple([&](const Triple& t) { rows.push_back(t); });
  for (auto _ : state) {
    store::TripleTable table;
    table.AppendAll(rows);
    table.Freeze();
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.size()));
}
BENCHMARK(BM_TripleTableFreeze)->Unit(benchmark::kMillisecond);

void BM_TripleTableScanByProperty(benchmark::State& state) {
  const Graph& g = CachedBsbm(250'000);
  store::TripleTable table;
  g.ForEachTriple([&](const Triple& t) { table.Append(t); });
  table.Freeze();
  // Scan every property id round-robin.
  std::vector<TermId> props;
  for (const Triple& t : g.data()) props.push_back(t.p);
  Random rng(5);
  size_t i = 0;
  for (auto _ : state) {
    store::TriplePattern q;
    q.p = props[i++ % props.size()];
    benchmark::DoNotOptimize(table.Count(q));
  }
}
BENCHMARK(BM_TripleTableScanByProperty)->Unit(benchmark::kMicrosecond);

void BM_TripleTablePointLookup(benchmark::State& state) {
  const Graph& g = CachedBsbm(250'000);
  store::TripleTable table;
  std::vector<Triple> rows;
  g.ForEachTriple([&](const Triple& t) {
    table.Append(t);
    rows.push_back(t);
  });
  table.Freeze();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Contains(rows[i++ % rows.size()]));
  }
}
BENCHMARK(BM_TripleTablePointLookup);

/// Before/after sweep: pre-substrate reference partitions vs the DenseGraph
/// implementations, at every BSBM bench scale. Substrate construction is
/// timed separately and also folded into the "cold" numbers so the speedup
/// claim does not hide the build cost.
void RunPartitionSweep(bench::BenchJson& json) {
  std::printf(
      "\n%-12s %-12s %-12s %-12s %-12s %-12s %-10s %-10s\n", "scale",
      "ref_weak", "ref_strong", "dense_build", "weak", "strong", "speedupW",
      "speedupS");
  for (uint64_t scale : bench::BenchScales()) {
    const Graph& g = bench::CachedBsbm(scale);

    Timer t;
    auto ref_weak = summary::ReferenceWeakPartition(g);
    double ref_weak_s = t.ElapsedSeconds();
    t.Reset();
    auto ref_strong = summary::ReferenceStrongPartition(g);
    double ref_strong_s = t.ElapsedSeconds();

    // Cold cache (the sweep runs before the microbenches touch these
    // graphs), so this times one real substrate build and warms the cache
    // the partitions below consume.
    t.Reset();
    const DenseGraph& dg = g.Dense();
    double build_s = t.ElapsedSeconds();
    benchmark::DoNotOptimize(&dg);

    t.Reset();
    auto weak = summary::ComputeWeakPartition(g);
    double weak_s = t.ElapsedSeconds();
    t.Reset();
    auto strong = summary::ComputeStrongPartition(g);
    double strong_s = t.ElapsedSeconds();

    // The sweep doubles as a correctness check at full bench scale.
    if (weak.num_classes != ref_weak.num_classes ||
        strong.num_classes != ref_strong.num_classes ||
        weak.class_of != ref_weak.class_of ||
        strong.class_of != ref_strong.class_of) {
      std::printf("MISMATCH against reference at scale %llu\n",
                  static_cast<unsigned long long>(scale));
      std::exit(1);
    }

    json.Record("weak_partition_reference", scale, ref_weak_s);
    json.Record("strong_partition_reference", scale, ref_strong_s);
    json.Record("dense_graph_build", scale, build_s);
    json.Record("weak_partition", scale, weak_s);
    json.Record("strong_partition", scale, strong_s);
    json.Record("weak_plus_strong_reference", scale, ref_weak_s + ref_strong_s);
    json.Record("weak_plus_strong_with_build", scale,
                build_s + weak_s + strong_s);

    std::printf(
        "%-12s %-12.4f %-12.4f %-12.4f %-12.4f %-12.4f %-10.2f %-10.2f\n",
        bench::Num(scale).c_str(), ref_weak_s, ref_strong_s, build_s, weak_s,
        strong_s, ref_weak_s / weak_s, ref_strong_s / strong_s);
  }
}

/// Warm-start sweep (the mmap-store tentpole's headline number): wall time
/// from a cold file to the first answered pattern count, parse path (.nt ->
/// Graph -> TripleTable::Freeze) vs store path (MmapStore::Open over a
/// frozen image, checksums verified). Runs after the partition sweep so
/// every substrate is already built — freezing reuses it for free.
void RunWarmstartSweep(bench::BenchJson& json) {
  const char* tmp_env = std::getenv("TMPDIR");
  const std::string tmp = tmp_env != nullptr ? tmp_env : "/tmp";
  std::printf("\n%-12s %-14s %-14s %-10s %-14s\n", "scale", "parse_s",
              "mmap_s", "speedup", "image_bytes");
  for (uint64_t scale : bench::BenchScales()) {
    if (scale != 50'000 && scale != 250'000 && scale != 1'000'000) continue;
    const Graph& g = bench::CachedBsbm(scale);
    const std::string base =
        tmp + "/rdfsum_warmstart_" + std::to_string(scale);
    if (!io::NTriplesWriter::WriteFile(g, base + ".nt").ok() ||
        !store::FreezeGraphToFile(g, base + ".rsb").ok()) {
      std::printf("FAILED to stage warm-start files at scale %llu\n",
                  static_cast<unsigned long long>(scale));
      std::exit(1);
    }
    const Term probe = g.dict().Decode(g.data().front().p);

    // Parse path: everything between "the process has a file" and "the
    // first pattern count comes back".
    Timer t;
    Graph parsed;
    if (!io::NTriplesParser::ParseFile(base + ".nt", &parsed).ok()) {
      std::exit(1);
    }
    store::TripleTable table;
    parsed.ForEachTriple([&](const Triple& tr) { table.Append(tr); });
    table.Freeze();
    store::TriplePattern q;
    q.p = parsed.dict().Lookup(probe);
    uint64_t parse_count = table.Count(q);
    benchmark::DoNotOptimize(parse_count);
    double parse_s = t.ElapsedSeconds();

    // Store path: mmap + corruption wall + the same count, zero-copy.
    t.Reset();
    auto store = store::MmapStore::Open(base + ".rsb");
    if (!store.ok()) std::exit(1);
    store::TriplePattern q2;
    q2.p = (*store)->dict().Lookup(probe);
    uint64_t mmap_count = (*store)->table().Count(q2);
    benchmark::DoNotOptimize(mmap_count);
    double mmap_s = t.ElapsedSeconds();

    if (parse_count != mmap_count) {
      std::printf("MISMATCH: warm-start counts differ at scale %llu\n",
                  static_cast<unsigned long long>(scale));
      std::exit(1);
    }

    json.Record("warmstart_parse", scale, parse_s);
    json.Record("warmstart_mmap", scale, mmap_s);
    std::printf("%-12s %-14.4f %-14.4f %-10.1f %-14llu\n",
                bench::Num(scale).c_str(), parse_s, mmap_s, parse_s / mmap_s,
                static_cast<unsigned long long>((*store)->image().size()));
    std::remove((base + ".nt").c_str());
    std::remove((base + ".rsb").c_str());
  }
}

void RunSweeps() {
  bench::BenchJson json("bench_substrate");
  RunPartitionSweep(json);
  RunWarmstartSweep(json);
  const char* path = std::getenv("RDFSUM_BENCH_JSON");
  std::string out = path != nullptr ? path : "BENCH_substrate.json";
  if (json.WriteFile(out)) {
    std::printf("\nwrote %s\n", out.c_str());
  } else {
    std::printf("\nFAILED to write %s\n", out.c_str());
  }
}

}  // namespace
}  // namespace rdfsum

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Sweeps first: the partition sweep relies on every cached graph's
  // substrate being cold.
  rdfsum::RunSweeps();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
