// Substrate micro-benchmarks: the N-Triples parser/writer, the dictionary,
// and the triple-table pattern scans the query evaluator builds on.

#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.h"
#include "io/ntriples_parser.h"
#include "io/ntriples_writer.h"
#include "store/triple_table.h"
#include "util/random.h"

namespace rdfsum {
namespace {

using bench::CachedBsbm;

void BM_NTriplesWrite(benchmark::State& state) {
  const Graph& g = CachedBsbm(100'000);
  for (auto _ : state) {
    std::string text = io::NTriplesWriter::ToString(g);
    benchmark::DoNotOptimize(text);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumTriples()));
}
BENCHMARK(BM_NTriplesWrite)->Unit(benchmark::kMillisecond);

void BM_NTriplesParse(benchmark::State& state) {
  const Graph& g = CachedBsbm(100'000);
  std::string text = io::NTriplesWriter::ToString(g);
  for (auto _ : state) {
    Graph parsed;
    io::ParseStats stats;
    auto st = io::NTriplesParser::ParseString(text, &parsed, &stats);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumTriples()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_NTriplesParse)->Unit(benchmark::kMillisecond);

void BM_DictionaryEncode(benchmark::State& state) {
  for (auto _ : state) {
    Dictionary dict;
    for (int i = 0; i < 10000; ++i) {
      dict.EncodeIri("http://bench.example.org/resource/" +
                     std::to_string(i % 4096));
    }
    benchmark::DoNotOptimize(dict);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_DictionaryEncode);

void BM_TripleTableFreeze(benchmark::State& state) {
  const Graph& g = CachedBsbm(250'000);
  std::vector<Triple> rows;
  g.ForEachTriple([&](const Triple& t) { rows.push_back(t); });
  for (auto _ : state) {
    store::TripleTable table;
    table.AppendAll(rows);
    table.Freeze();
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.size()));
}
BENCHMARK(BM_TripleTableFreeze)->Unit(benchmark::kMillisecond);

void BM_TripleTableScanByProperty(benchmark::State& state) {
  const Graph& g = CachedBsbm(250'000);
  store::TripleTable table;
  g.ForEachTriple([&](const Triple& t) { table.Append(t); });
  table.Freeze();
  // Scan every property id round-robin.
  std::vector<TermId> props;
  for (const Triple& t : g.data()) props.push_back(t.p);
  Random rng(5);
  size_t i = 0;
  for (auto _ : state) {
    store::TriplePattern q;
    q.p = props[i++ % props.size()];
    benchmark::DoNotOptimize(table.Count(q));
  }
}
BENCHMARK(BM_TripleTableScanByProperty)->Unit(benchmark::kMicrosecond);

void BM_TripleTablePointLookup(benchmark::State& state) {
  const Graph& g = CachedBsbm(250'000);
  store::TripleTable table;
  std::vector<Triple> rows;
  g.ForEachTriple([&](const Triple& t) {
    table.Append(t);
    rows.push_back(t);
  });
  table.Freeze();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Contains(rows[i++ % rows.size()]));
  }
}
BENCHMARK(BM_TripleTablePointLookup);

}  // namespace
}  // namespace rdfsum

BENCHMARK_MAIN();
