// The cost-based BGP engine measured: naive (frozen textual order) vs.
// greedy TableStats plans vs. summary-estimated plans over star/chain/
// snowflake shapes on BSBM and LUBM, plus the planner's estimate error
// (q-error of the final estimated cardinality vs. the true embedding
// count). Wall times land in BENCH_query.json (override the path with
// RDFSUM_BENCH_JSON); q-error records carry a _qerror suffix and are
// dimensionless despite the file's "seconds" unit label.
//
// Query texts are written with the *worst* pattern first, so the naive
// baseline pays the textual order and the planners have something to win.
//
// PR 4 adds two streaming sections at the largest BSBM scale of the sweep:
// limit pushdown (full materializing Evaluate vs. a cursor drained to 10
// rows — the stream_* records) and the hash-join pick on planner-flagged
// fat intermediates (kNever vs. kFromPlan cursors over unanchored joins —
// the hashjoin_* records). Both re-check result identity against the
// legacy path and fail the run on divergence, like the planner sweep.
//
// PR 10 reworks the substrate: each scale's graph is frozen ONCE to a
// temporary .rsb and reopened via store::MmapStore, and every section's
// evaluator borrows that store's table — previously each section rebuilt
// (re-sorted) the triple table from the Graph. It also adds the par_*
// thread sweep: the fattest unanchored queries drained at parallelism
// {1,2,4,8}, byte-identity enforced against the sequential stream in-bench
// (divergence fails the run). Rows carry threads_requested/_effective; on
// a 1-core host the >1 rows measure morsel machinery overhead, not scaling.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.h"
#include "gen/lubm.h"
#include "query/cursor.h"
#include "query/evaluator.h"
#include "query/executor.h"
#include "query/sparql_parser.h"
#include "store/mmap_store.h"
#include "summary/cardinality.h"
#include "summary/summarizer.h"
#include "util/csv.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace rdfsum {
namespace {

using bench::BenchScales;
using bench::CachedBsbm;
using bench::Num;
using query::BgpEvaluator;
using query::BgpQuery;
using query::PlannerMode;
using query::PlannerModeName;

/// Best-of-two wall time; the first run doubles as warm-up.
template <typename Fn>
double BestOfTwo(Fn&& fn) {
  Timer t1;
  fn();
  double first = t1.ElapsedSeconds();
  Timer t2;
  fn();
  return std::min(first, t2.ElapsedSeconds());
}

struct ShapeQuery {
  std::string shape;  // "star", "chain", "snowflake"
  std::string sparql;
};

std::vector<ShapeQuery> BsbmQueries() {
  const std::string p = "PREFIX b: <http://bsbm.example.org/>\n";
  return {
      // Star around a product, anchored at one feature. Textually the
      // unselective label pattern (every entity kind has labels) comes
      // first; the planners should start at the anchored feature.
      {"star",
       p +
           "SELECT ?p ?l ?pr WHERE { ?p b:label ?l . ?p b:producer ?pr . "
           "?p b:productFeature <http://bsbm.example.org/feature/Feature0> }"},
      // Offer -> product -> producer chain written from the fat end.
      {"chain",
       p +
           "SELECT ?o ?d WHERE { ?o b:offerProduct ?p . ?o b:deliveryDays ?d "
           ". ?p b:producer <http://bsbm.example.org/producer/Producer0> }"},
      // Snowflake: review star and offer star sharing the product center,
      // anchored at one producer; textual order starts at the reviews.
      {"snowflake",
       p +
           "SELECT ?r ?price WHERE { ?r b:reviewFor ?p . ?r b:reviewer ?x . "
           "?x b:country ?c . ?o b:offerProduct ?p . ?o b:price ?price . "
           "?p b:producer <http://bsbm.example.org/producer/Producer1> }"},
  };
}

std::vector<ShapeQuery> LubmQueries() {
  const std::string p = "PREFIX l: <http://lubm.example.org/>\n";
  return {
      // Person star with the ubiquitous name/email patterns first.
      {"star",
       p +
           "SELECT ?x ?n WHERE { ?x l:name ?n . ?x l:emailAddress ?e . "
           "?x l:worksFor ?d . ?d l:subOrganizationOf ?u }"},
      // Student -> advisor -> department chain from the fat end (name).
      {"chain",
       p +
           "SELECT ?s ?d WHERE { ?s l:name ?n . ?s l:advisor ?a . "
           "?a l:headOf ?d . ?d l:subOrganizationOf ?u }"},
  };
}

BgpQuery MustParse(const std::string& text) {
  auto q = query::ParseSparql(text);
  if (!q.ok()) {
    std::cerr << "bench query failed to parse: " << q.status().ToString()
              << "\n";
    std::abort();
  }
  return std::move(q).value();
}

std::multiset<std::string> CanonicalRows(const std::vector<query::Row>& rows) {
  std::multiset<std::string> out;
  for (const query::Row& row : rows) {
    std::string line;
    for (const Term& t : row) {
      line += t.ToNTriples();
      line += '\t';
    }
    out.insert(std::move(line));
  }
  return out;
}

double QError(double estimate, uint64_t actual) {
  double a = static_cast<double>(actual);
  if (a < 1.0) a = 1.0;
  if (estimate < 1.0) estimate = 1.0;
  return std::max(estimate / a, a / estimate);
}

const Graph& CachedLubm(uint64_t universities) {
  static auto* cache = new std::map<uint64_t, Graph>();
  auto it = cache->find(universities);
  if (it == cache->end()) {
    gen::LubmOptions opt;
    opt.num_universities = universities;
    it = cache->emplace(universities, gen::GenerateLubm(opt)).first;
  }
  return it->second;
}

/// Freezes `g` once per (workload, scale) to a temp .rsb, reopens it via
/// MmapStore, and memoizes the open store for the process lifetime. Every
/// section at a given scale shares this store's borrow-mode table instead
/// of rebuilding (re-sorting) it from the Graph per evaluator; the one-time
/// freeze+open wall lands in the `<workload>_freeze_open` record.
const store::MmapStore& FrozenStore(bench::BenchJson* json,
                                    const std::string& workload,
                                    const Graph& g) {
  static auto* cache =
      new std::map<std::string, std::unique_ptr<store::MmapStore>>();
  const std::string key =
      workload + "_" + std::to_string(g.NumTriples());
  auto it = cache->find(key);
  if (it == cache->end()) {
    const char* tmp = std::getenv("TMPDIR");
    std::string path = std::string(tmp != nullptr ? tmp : "/tmp") +
                       "/bench_query_" + std::to_string(::getpid()) + "_" +
                       key + ".rsb";
    Timer t;
    Status frozen = store::FreezeGraphToFile(g, path);
    if (!frozen.ok()) {
      std::cerr << "bench freeze failed: " << frozen.ToString() << "\n";
      std::abort();
    }
    auto opened = store::MmapStore::Open(path);
    if (!opened.ok()) {
      std::cerr << "bench open failed: " << opened.status().ToString()
                << "\n";
      std::abort();
    }
    json->Record(workload + "_freeze_open", g.NumTriples(),
                 t.ElapsedSeconds());
    std::remove(path.c_str());  // the open store keeps the mapping alive
    it = cache->emplace(key, std::move(opened).value()).first;
  }
  return *it->second;
}

/// One workload x scale sweep: evaluates every shape under every planner
/// mode, asserts result identity (sets *all_equal false on divergence),
/// and records wall times + q-errors.
void RunWorkload(bench::BenchJson* json, const std::string& workload,
                 const Graph& g, const std::vector<ShapeQuery>& queries,
                 TablePrinter* table, bool* all_equal) {
  // Setup shared by all modes: frozen store once per scale (cached across
  // sections), summary + estimator once. The evaluator borrows the store's
  // already-sorted table, so setup no longer pays a per-section re-sort.
  const store::MmapStore& st = FrozenStore(json, workload, g);
  Timer setup_timer;
  summary::SummaryResult s =
      summary::Summarize(g, summary::SummaryKind::kWeak);
  summary::CardinalityEstimator estimator(g, s);
  query::EvaluatorOptions options;
  options.estimator = &estimator;
  BgpEvaluator eval(st.dict(), st.table(), options);
  json->Record(workload + "_setup", g.NumTriples(),
               setup_timer.ElapsedSeconds());

  for (const ShapeQuery& sq : queries) {
    BgpQuery q = MustParse(sq.sparql);
    std::map<PlannerMode, double> secs;
    std::multiset<std::string> baseline_rows;
    bool equal = true;
    std::map<PlannerMode, double> qerr;
    for (PlannerMode mode : query::kAllPlannerModes) {
      std::vector<query::Row> rows;
      secs[mode] = BestOfTwo([&] {
        auto r = eval.Evaluate(q, SIZE_MAX, mode);
        rows = std::move(r).value();
      });
      json->Record(workload + "_" + sq.shape + "_" + PlannerModeName(mode),
                   g.NumTriples(), secs[mode]);
      if (mode == PlannerMode::kNaive) {
        baseline_rows = CanonicalRows(rows);
      } else {
        equal = equal && CanonicalRows(rows) == baseline_rows;
      }
      if (mode != PlannerMode::kNaive) {
        auto ex = eval.Explain(q, mode);
        double est = ex->plan.steps.empty()
                         ? 0.0
                         : ex->plan.steps.back().estimated_rows;
        qerr[mode] = QError(est, ex->num_embeddings);
        json->Record(
            workload + "_" + sq.shape + "_qerror_" + PlannerModeName(mode),
            g.NumTriples(), qerr[mode]);
      }
    }
    table->AddRow({workload, Num(g.NumTriples()), sq.shape,
                   FormatDouble(secs[PlannerMode::kNaive] * 1e3, 2),
                   FormatDouble(secs[PlannerMode::kGreedy] * 1e3, 2),
                   FormatDouble(secs[PlannerMode::kSummary] * 1e3, 2),
                   FormatDouble(secs[PlannerMode::kNaive] /
                                    std::max(1e-9,
                                             secs[PlannerMode::kGreedy]),
                                1) +
                       "x",
                   FormatDouble(qerr[PlannerMode::kGreedy], 1),
                   FormatDouble(qerr[PlannerMode::kSummary], 1),
                   equal ? "yes" : "NO (bug!)"});
    *all_equal = *all_equal && equal;
  }
}

std::multiset<std::string> DrainCursorCanonical(const BgpEvaluator& eval,
                                                const BgpQuery& q,
                                                query::CursorOptions options,
                                                uint64_t* out_rows) {
  auto cursor = eval.Open(q, options);
  std::multiset<std::string> rows;
  if (!cursor.ok()) {
    std::cerr << "bench open failed: " << cursor.status().ToString() << "\n";
    std::abort();
  }
  query::IdRow row;
  uint64_t n = 0;
  while ((*cursor)->Next(&row)) {
    query::Row decoded = eval.Decode(row);
    std::string line;
    for (const Term& t : decoded) {
      line += t.ToNTriples();
      line += '\t';
    }
    rows.insert(std::move(line));
    ++n;
  }
  if (out_rows != nullptr) *out_rows = n;
  return rows;
}

/// Wall time of opening a cursor and draining it (decoding every produced
/// row, like the CLI does).
double TimeCursorDrain(const BgpEvaluator& eval, const BgpQuery& q,
                       query::CursorOptions options) {
  return BestOfTwo([&] {
    auto cursor = eval.Open(q, options);
    query::IdRow row;
    while ((*cursor)->Next(&row)) {
      query::Row decoded = eval.Decode(row);
      benchmark::DoNotOptimize(decoded);
    }
  });
}

/// Limit pushdown: the full materializing Evaluate vs. a cursor drained to
/// its first 10 distinct rows, per shape, on the greedy plan. The cursor
/// stops scanning once the quota fills, so small limits should beat the
/// materializing path by orders of magnitude on fat results.
void RunStreamingBench(bench::BenchJson* json, const store::MmapStore& st,
                       uint64_t triples, bool* all_equal) {
  BgpEvaluator eval(st.dict(), st.table());
  TablePrinter table({"shape", "rows", "materialize full (ms)",
                      "cursor full (ms)", "cursor limit 10 (ms)",
                      "speedup@10", "equal"});
  std::vector<ShapeQuery> queries = BsbmQueries();
  // The snowflake without its producer anchor: tens of thousands of result
  // rows, the workload where pagination without pushdown hurts most.
  queries.push_back(
      {"snowflake_free",
       "PREFIX b: <http://bsbm.example.org/>\n"
       "SELECT ?r ?price WHERE { ?r b:reviewFor ?p . ?r b:reviewer ?x . "
       "?x b:country ?c . ?o b:offerProduct ?p . ?o b:price ?price }"});
  for (const ShapeQuery& sq : queries) {
    BgpQuery q = MustParse(sq.sparql);
    std::vector<query::Row> materialized;
    double full_materialize = BestOfTwo([&] {
      auto r = eval.Evaluate(q, SIZE_MAX);
      materialized = std::move(r).value();
    });
    uint64_t cursor_rows = 0;
    std::multiset<std::string> streamed =
        DrainCursorCanonical(eval, q, {}, &cursor_rows);
    bool equal = streamed == CanonicalRows(materialized);
    double full_cursor = TimeCursorDrain(eval, q, {});
    query::CursorOptions limit10;
    limit10.limit = 10;
    double at10 = TimeCursorDrain(eval, q, limit10);
    json->Record("stream_" + sq.shape + "_materialize_full", triples,
                 full_materialize);
    json->Record("stream_" + sq.shape + "_cursor_full", triples,
                 full_cursor);
    json->Record("stream_" + sq.shape + "_cursor_limit10", triples,
                 at10);
    table.AddRow({sq.shape, Num(cursor_rows),
                  FormatDouble(full_materialize * 1e3, 3),
                  FormatDouble(full_cursor * 1e3, 3),
                  FormatDouble(at10 * 1e3, 3),
                  FormatDouble(full_materialize / std::max(1e-9, at10), 1) +
                      "x",
                  equal ? "yes" : "NO (bug!)"});
    *all_equal = *all_equal && equal;
  }
  table.Print(std::cout,
              "Streaming cursors: limit pushdown stops the scan after the "
              "first 10 distinct rows (greedy plans, largest BSBM scale)");
}

/// Hash joins on planner-flagged fat intermediates: unanchored joins whose
/// probe side is every offer/review. kFromPlan (the flagged hash picks)
/// vs. kNever (index nested loops all the way down).
void RunHashJoinBench(bench::BenchJson* json, const store::MmapStore& st,
                      uint64_t triples, bool* all_equal) {
  const std::string p = "PREFIX b: <http://bsbm.example.org/>\n";
  const std::vector<ShapeQuery> queries = {
      // Every offer probes its price: the probe side is all offerProduct
      // triples, the build side all price triples.
      {"fatchain",
       p + "SELECT ?o ?price WHERE { ?o b:offerProduct ?p . "
           "?o b:price ?price }"},
      // Review x offer join on the shared product, then the price lookup —
      // two flagged steps, the first keyed on the join variable ?p.
      {"fatstar",
       p + "SELECT ?r ?price WHERE { ?r b:reviewFor ?p . "
           "?o b:offerProduct ?p . ?o b:price ?price }"},
  };
  BgpEvaluator eval(st.dict(), st.table());
  TablePrinter table({"query", "flagged steps", "rows", "nlj (ms)",
                      "hash (ms)", "speedup", "equal"});
  for (const ShapeQuery& sq : queries) {
    BgpQuery q = MustParse(sq.sparql);
    query::QueryPlan plan = eval.Plan(q);
    int flagged = 0;
    for (const query::PlanStep& step : plan.steps) {
      if (step.use_hash_join) ++flagged;
    }
    query::CursorOptions nlj;
    nlj.hash_join = query::HashJoinMode::kNever;
    query::CursorOptions from_plan;  // the planner's flagged picks
    uint64_t rows_nlj = 0, rows_hash = 0;
    bool equal = DrainCursorCanonical(eval, q, nlj, &rows_nlj) ==
                 DrainCursorCanonical(eval, q, from_plan, &rows_hash);
    equal = equal && rows_nlj == rows_hash;
    double nlj_secs = TimeCursorDrain(eval, q, nlj);
    double hash_secs = TimeCursorDrain(eval, q, from_plan);
    json->Record("hashjoin_" + sq.shape + "_nlj", triples, nlj_secs);
    json->Record("hashjoin_" + sq.shape + "_hash", triples, hash_secs);
    table.AddRow({sq.shape, std::to_string(flagged), Num(rows_nlj),
                  FormatDouble(nlj_secs * 1e3, 2),
                  FormatDouble(hash_secs * 1e3, 2),
                  FormatDouble(nlj_secs / std::max(1e-9, hash_secs), 2) + "x",
                  equal ? "yes" : "NO (bug!)"});
    *all_equal = *all_equal && equal;
    if (flagged == 0) {
      std::cerr << "warning: planner flagged no hash-join step for "
                << sq.shape << " at " << triples
                << " triples (below the probe floor?)\n";
    }
  }
  table.Print(std::cout,
              "Hash joins on planner-flagged fat intermediates (kFromPlan "
              "vs. nested loops, largest BSBM scale)");
}

/// Drains a cursor into the ordered byte rendering of its stream — order
/// preserved, unlike DrainCursorCanonical's multiset — so the parallel
/// sweep can assert byte-identity, not just set equality.
std::vector<std::string> DrainCursorOrdered(const BgpEvaluator& eval,
                                            const BgpQuery& q,
                                            PlannerMode mode,
                                            query::CursorOptions options) {
  auto cursor = eval.Open(q, mode, options);
  if (!cursor.ok()) {
    std::cerr << "bench open failed: " << cursor.status().ToString() << "\n";
    std::abort();
  }
  std::vector<std::string> rows;
  query::IdRow row;
  while ((*cursor)->Next(&row)) {
    std::string line;
    for (const Term& t : eval.Decode(row)) {
      line += t.ToNTriples();
      line += '\t';
    }
    rows.push_back(std::move(line));
  }
  return rows;
}

/// One full decode-drain under an explicit planner mode.
void DrainOnce(const BgpEvaluator& eval, const BgpQuery& q, PlannerMode mode,
               const query::CursorOptions& options) {
  auto cursor = eval.Open(q, mode, options);
  query::IdRow row;
  while ((*cursor)->Next(&row)) {
    query::Row decoded = eval.Decode(row);
    benchmark::DoNotOptimize(decoded);
  }
}

/// Interleaved paired walls: alternates base-option and t-option drains
/// within one measurement window, best-of-5 each. The par_* rows compare
/// thread counts at a ~5%% tolerance, so a container slowdown must hit both
/// sides of the ratio — timing the baseline once up front and the t>1 rows
/// seconds later lets one noisy window masquerade as morsel overhead.
std::pair<double, double> TimePairedDrains(const BgpEvaluator& eval,
                                           const BgpQuery& q, PlannerMode mode,
                                           const query::CursorOptions& base,
                                           const query::CursorOptions& opts) {
  double best_base = 1e99, best_opts = 1e99;
  for (int rep = 0; rep < 5; ++rep) {
    best_base =
        std::min(best_base, BestOfTwo([&] { DrainOnce(eval, q, mode, base); }));
    best_opts =
        std::min(best_opts, BestOfTwo([&] { DrainOnce(eval, q, mode, opts); }));
  }
  return {best_base, best_opts};
}

/// Morsel-parallel drains of the fattest unanchored queries (the NLJ-heavy
/// snowflake_free and the shared-hash-build fatstar) at parallelism
/// {1,2,4,8}. Every thread count's stream must be byte-identical to the
/// sequential drain — the ordered-merge invariant the executor promises —
/// and a divergence fails the whole run. Records land as par_<shape>_t<N>
/// with threads_requested/threads_effective attached; interpret the wall
/// times against the machine's hardware_concurrency (on 1 core the t>1
/// rows price the morsel machinery, not scaling).
///
/// Bench overrides: the production fan-out gate (kParallelMinScanRows) and
/// morsel size assume driving scans of tens of thousands of rows; at the
/// capped bench scales the fattest scan is smaller, which would silently
/// compile every row here sequentially. The sweep drops the gate to 1 and
/// the morsel to 1024 rows so the gather actually runs and its overhead is
/// what the t>1 rows measure. The production values stay covered by the
/// gate tests (tests/parallel_query_test.cc).
inline constexpr uint64_t kBenchMorselRows = 2048;

void RunParallelBench(bench::BenchJson* json, const store::MmapStore& st,
                      uint64_t triples, bool* all_equal) {
  const std::string p = "PREFIX b: <http://bsbm.example.org/>\n";
  const std::vector<ShapeQuery> queries = {
      {"snowflake_free",
       p + "SELECT ?r ?price WHERE { ?r b:reviewFor ?p . ?r b:reviewer ?x . "
           "?x b:country ?c . ?o b:offerProduct ?p . ?o b:price ?price }"},
      {"fatstar",
       p + "SELECT ?r ?price WHERE { ?r b:reviewFor ?p . "
           "?o b:offerProduct ?p . ?o b:price ?price }"},
  };
  BgpEvaluator eval(st.dict(), st.table());
  TablePrinter table({"query", "threads", "effective", "morsels",
                      "drain (ms)", "vs. t1", "identical"});
  for (const ShapeQuery& sq : queries) {
    BgpQuery q = MustParse(sq.sparql);
    // The real fan-out the executor will resolve: exact driving-scan rows
    // of the naive plan's first step, split into bench-sized morsels.
    query::QueryPlan plan = eval.Plan(q, PlannerMode::kNaive);
    const query::CompiledPattern& first =
        plan.compiled.patterns[plan.steps[0].pattern];
    const uint64_t driving = st.table().Count(query::PatternConstants(first));
    const uint64_t morsels =
        (driving + kBenchMorselRows - 1) / kBenchMorselRows;
    auto make_options = [&](uint32_t threads) {
      query::CursorOptions options;
      options.parallelism = threads;
      options.min_parallel_rows = 1;
      options.morsel_rows = kBenchMorselRows;
      return options;
    };
    // Correctness first: every thread count must reproduce the sequential
    // byte stream exactly.
    const query::CursorOptions base = make_options(1);
    const std::vector<std::string> sequential =
        DrainCursorOrdered(eval, q, PlannerMode::kNaive, base);
    bool query_equal = true;
    // Timing: each t>1 drain is interleaved with a t1 drain in the same
    // window, so the t1 row and every ratio are immune to container noise
    // drifting between rows.
    double t1_secs = 1e99;
    struct ParRow {
      uint32_t threads, effective;
      double secs;
      bool identical;
    };
    std::vector<ParRow> rows_out;
    rows_out.push_back({1, 1, 0, true});
    for (uint32_t threads : {2u, 4u, 8u}) {
      const query::CursorOptions options = make_options(threads);
      const bool identical =
          DrainCursorOrdered(eval, q, PlannerMode::kNaive, options) ==
          sequential;
      auto [base_secs, secs] =
          TimePairedDrains(eval, q, PlannerMode::kNaive, base, options);
      t1_secs = std::min(t1_secs, base_secs);
      rows_out.push_back({threads, util::ResolveThreadCount(threads, morsels),
                          secs, identical});
      query_equal = query_equal && identical;
    }
    rows_out[0].secs = t1_secs;
    for (const ParRow& r : rows_out) {
      json->RecordThreads("par_" + sq.shape + "_t" + std::to_string(r.threads),
                          triples, r.secs, r.threads, r.effective);
      table.AddRow({sq.shape, std::to_string(r.threads),
                    std::to_string(r.effective), std::to_string(morsels),
                    FormatDouble(r.secs * 1e3, 2),
                    FormatDouble(t1_secs / std::max(1e-9, r.secs), 2) + "x",
                    r.identical ? "yes" : "NO (bug!)"});
    }
    *all_equal = *all_equal && query_equal;
  }
  table.Print(std::cout,
              "Morsel-parallel drains: ordered merge must be byte-identical "
              "to the sequential stream at every thread count");
}

/// Returns false when any planner mode diverged from the naive rows.
bool PrintQueryBench() {
  bench::BenchJson json("bench_query");
  // Context for the par_* rows: effective threads beyond this measured
  // oversubscription, not scaling.
  json.MetaInt("hardware_concurrency", std::thread::hardware_concurrency());
  TablePrinter table({"workload", "triples", "shape", "naive (ms)",
                      "greedy (ms)", "summary (ms)", "speedup",
                      "qerr greedy", "qerr summary", "equal"});
  // BSBM scales: query evaluation is per-row work, so cap the sweep at
  // 250k triples (RDFSUM_BENCH_MAX_TRIPLES lowers it further).
  bool all_equal = true;
  for (uint64_t scale : BenchScales()) {
    if (scale > 250'000) continue;
    RunWorkload(&json, "bsbm", CachedBsbm(scale), BsbmQueries(), &table,
                &all_equal);
  }
  for (uint64_t universities : {2ull, 10ull}) {
    RunWorkload(&json, "lubm", CachedLubm(universities), LubmQueries(),
                &table, &all_equal);
  }
  table.Print(std::cout,
              "Cost-based BGP planning: naive vs. greedy vs. summary "
              "(q-error = est/actual of final cardinality)");

  // Streaming sections at the largest BSBM scale the sweep reached.
  uint64_t stream_scale = 0;
  for (uint64_t scale : BenchScales()) {
    if (scale <= 250'000) stream_scale = scale;
  }
  if (stream_scale > 0) {
    const Graph& g = CachedBsbm(stream_scale);
    const store::MmapStore& st = FrozenStore(&json, "bsbm", g);
    RunStreamingBench(&json, st, g.NumTriples(), &all_equal);
    RunHashJoinBench(&json, st, g.NumTriples(), &all_equal);
    RunParallelBench(&json, st, g.NumTriples(), &all_equal);
  }
  const char* path = std::getenv("RDFSUM_BENCH_JSON");
  std::string out = path != nullptr ? path : "BENCH_query.json";
  if (json.WriteFile(out)) {
    std::cout << "wrote " << out << "\n";
  } else {
    std::cerr << "failed to write " << out << "\n";
  }
  std::cout.flush();
  if (!all_equal) {
    std::cerr << "bench_query: planner modes diverged from the naive result "
                 "set (see the 'equal' column) — this is a correctness bug\n";
  }
  return all_equal;
}

void BM_PlanAndExecute(benchmark::State& state) {
  const Graph& g = CachedBsbm(100'000);
  summary::SummaryResult s =
      summary::Summarize(g, summary::SummaryKind::kWeak);
  summary::CardinalityEstimator estimator(g, s);
  query::EvaluatorOptions options;
  options.estimator = &estimator;
  BgpEvaluator eval(g, options);
  BgpQuery q = MustParse(BsbmQueries()[0].sparql);
  auto mode = static_cast<PlannerMode>(state.range(0));
  for (auto _ : state) {
    auto rows = eval.Evaluate(q, SIZE_MAX, mode);
    benchmark::DoNotOptimize(rows);
  }
  state.SetLabel(PlannerModeName(mode));
}
BENCHMARK(BM_PlanAndExecute)
    ->Arg(static_cast<int>(PlannerMode::kNaive))
    ->Arg(static_cast<int>(PlannerMode::kGreedy))
    ->Arg(static_cast<int>(PlannerMode::kSummary))
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rdfsum

int main(int argc, char** argv) {
  // A divergence fails the run so CI's bench smoke gates on it.
  if (!rdfsum::PrintQueryBench()) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
