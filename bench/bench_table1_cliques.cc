// Reproduces Table 1: the source and target cliques of every resource of the
// Figure 2 sample graph, plus clique-computation throughput on BSBM.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "bench_common.h"
#include "gen/paper_example.h"
#include "io/dot_writer.h"
#include "summary/cliques.h"
#include "util/csv.h"

namespace rdfsum {
namespace {

using bench::CachedBsbm;
using summary::CliqueScope;
using summary::ComputePropertyCliques;
using summary::PropertyCliques;

std::string CliqueToString(const Graph& g,
                           const std::vector<std::vector<TermId>>& members,
                           uint32_t id) {
  if (id == 0) return "{}";
  std::string out = "{";
  bool first = true;
  for (TermId p : members[id - 1]) {
    if (!first) out += ",";
    out += io::IriLocalName(g.dict().Decode(p).lexical);
    first = false;
  }
  return out + "}";
}

void PrintTable1() {
  gen::Figure2Example ex = gen::BuildFigure2();
  PropertyCliques cliques = ComputePropertyCliques(ex.graph);

  TablePrinter table({"r", "SC(r)", "TC(r)"});
  struct Entry {
    const char* name;
    TermId id;
  };
  const Entry entries[] = {
      {"r1", ex.r1}, {"r2", ex.r2}, {"r3", ex.r3}, {"r4", ex.r4},
      {"r5", ex.r5}, {"a1", ex.a1}, {"t1", ex.t1}, {"t2", ex.t2},
      {"e1", ex.e1}, {"e2", ex.e2}, {"c1", ex.c1}, {"t4", ex.t4},
      {"a2", ex.a2}, {"t3", ex.t3}, {"r6", ex.r6},
  };
  for (const Entry& e : entries) {
    table.AddRow({e.name,
                  CliqueToString(ex.graph, cliques.source_clique_members,
                                 cliques.SourceCliqueOf(e.id)),
                  CliqueToString(ex.graph, cliques.target_clique_members,
                                 cliques.TargetCliqueOf(e.id))});
  }
  table.Print(std::cout,
              "Table 1: source and target cliques of the sample RDF graph");

  TablePrinter distances({"pair", "distance (Definition 6)"});
  distances.AddRow(
      {"d(a,t)", std::to_string(summary::PropertyDistance(
                     ex.graph, ex.author, ex.title, true))});
  distances.AddRow(
      {"d(a,e)", std::to_string(summary::PropertyDistance(
                     ex.graph, ex.author, ex.editor, true))});
  distances.AddRow(
      {"d(a,c)", std::to_string(summary::PropertyDistance(
                     ex.graph, ex.author, ex.comment, true))});
  distances.Print(std::cout, "Property distances in SC1 (§3.1)");
  std::cout.flush();
}

void BM_ComputeCliques(benchmark::State& state) {
  const Graph& g = CachedBsbm(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto c = ComputePropertyCliques(g);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.data().size()));
}
BENCHMARK(BM_ComputeCliques)
    ->Arg(50'000)
    ->Arg(250'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

void BM_ComputeCliquesUntypedScope(benchmark::State& state) {
  const Graph& g = CachedBsbm(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    auto c = ComputePropertyCliques(g, CliqueScope::kUntypedEndpoints);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ComputeCliquesUntypedScope)
    ->Arg(250'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rdfsum

int main(int argc, char** argv) {
  rdfsum::PrintTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
