// The paper's §9 future work — parallel summarization — measured: the
// substrate-sharded weak summarizer and the sharded bisimulation baseline
// against their sequential counterparts across a thread sweep, plus the
// streaming maintainer's per-triple cost. Wall times land in
// BENCH_parallel.json (override the path with RDFSUM_BENCH_JSON) so the
// scaling trajectory can be tracked and diffed across PRs.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <thread>

#include "bench_common.h"
#include "io/ntriples_parser.h"
#include "io/ntriples_writer.h"
#include "store/triple_table.h"
#include "summary/isomorphism.h"
#include "summary/maintenance.h"
#include "summary/node_partition.h"
#include "summary/parallel.h"
#include "summary/summarizer.h"
#include "util/csv.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace rdfsum {
namespace {

using bench::BenchScales;
using bench::CachedBsbm;
using bench::Num;
using summary::ComputeBisimulationPartition;
using summary::ComputeParallelWeakPartition;
using summary::ComputeWeakPartition;
using summary::NodePartition;
using summary::ParallelBisimulationOptions;
using summary::ParallelBisimulationSummarize;
using summary::ParallelWeakOptions;
using summary::ParallelWeakSummarize;
using summary::QuotientByPartition;
using summary::Summarize;
using summary::SummaryKind;

constexpr uint32_t kSweepThreads[] = {1, 2, 4, 8};

/// Best-of-two wall time; the first run doubles as warm-up (single-shot
/// timings at small scales are dominated by allocator/page-fault
/// cold-start, not the algorithm).
template <typename Fn>
double BestOfTwo(Fn&& fn) {
  Timer t1;
  fn();
  double first = t1.ElapsedSeconds();
  Timer t2;
  fn();
  return std::min(first, t2.ElapsedSeconds());
}

bool SamePartition(const NodePartition& a, const NodePartition& b) {
  return a.num_classes == b.num_classes && a.class_of == b.class_of;
}

/// One parallel measurement: wall time, whether the result matched the
/// sequential baseline, and the thread count the runtime actually spawned
/// for the dominant sharded phase (ResolveThreadCount of the requested
/// count against that phase's work size; phases over smaller inputs — the
/// type scan, bisimulation's node ranges — may resolve lower).
struct ParallelRun {
  double seconds = 0.0;
  bool matched = false;
  uint32_t effective_threads = 0;
};

// One thread sweep over the bench scales: `sequential(g)` measures the
// baseline (stashing whatever the equality check needs), then
// `parallel(g, threads)` runs the sharded path. Records land in the JSON as
// <prefix>_sequential and <prefix>_p<threads>, each parallel row carrying
// its requested and effective thread counts. Any baseline mismatch clears
// *all_equal (the caller turns that into a non-zero exit).
template <typename Sequential, typename Parallel>
void PrintSweep(bench::BenchJson* json, const std::string& prefix,
                const std::string& title, bool* all_equal,
                Sequential&& sequential, Parallel&& parallel) {
  TablePrinter table({"triples", "sequential (ms)", "1t (ms)", "2t (ms)",
                      "4t (ms)", "8t (ms)", "speedup@4", "equal"});
  for (uint64_t scale : BenchScales()) {
    const Graph& g = CachedBsbm(scale);
    g.Dense();  // substrate shared by every run below; build it once up front
    double seq = sequential(g);
    json->RecordThreads(prefix + "_sequential", scale, seq, 1, 1);

    std::vector<std::string> row = {Num(g.NumTriples()),
                                    FormatDouble(seq * 1e3, 1)};
    double at4 = seq;
    bool equal = true;
    for (uint32_t threads : kSweepThreads) {
      ParallelRun run = parallel(g, threads);
      json->RecordThreads(prefix + "_p" + std::to_string(threads), scale,
                          run.seconds, threads, run.effective_threads);
      row.push_back(FormatDouble(run.seconds * 1e3, 1));
      if (threads == 4) at4 = run.seconds;
      equal = equal && run.matched;
    }
    row.push_back(FormatDouble(seq / at4, 2) + "x");
    row.push_back(equal ? "yes" : "NO (bug!)");
    *all_equal = *all_equal && equal;
    table.AddRow(row);
  }
  table.Print(std::cout, title);
}

void PrintParallelWeak(bench::BenchJson* json, bool* all_equal) {
  summary::SummaryResult batch;
  PrintSweep(
      json, "weak",
      "Future work (§9): parallel weak summarization (substrate-sharded)",
      all_equal,
      [&](const Graph& g) {
        return BestOfTwo([&] { batch = Summarize(g, SummaryKind::kWeak); });
      },
      [&](const Graph& g, uint32_t threads) {
        ParallelWeakOptions options;
        options.num_threads = threads;
        summary::SummaryResult r;
        double secs =
            BestOfTwo([&] { r = ParallelWeakSummarize(g, options); });
        return ParallelRun{
            secs, summary::AreSummariesIsomorphic(batch.graph, r.graph),
            util::ResolveThreadCount(threads, g.Dense().num_data_edges())};
      });
}

// Partition construction alone — the phase the sharded scan parallelizes.
void PrintParallelWeakPartitionOnly(bench::BenchJson* json, bool* all_equal) {
  NodePartition seq_part;
  PrintSweep(
      json, "weak_partition",
      "Parallel weak partition only (quotient excluded)", all_equal,
      [&](const Graph& g) {
        return BestOfTwo([&] { seq_part = ComputeWeakPartition(g); });
      },
      [&](const Graph& g, uint32_t threads) {
        NodePartition part;
        double secs = BestOfTwo(
            [&] { part = ComputeParallelWeakPartition(g, threads); });
        return ParallelRun{
            secs, SamePartition(seq_part, part),
            util::ResolveThreadCount(threads, g.Dense().num_data_edges())};
      });
}

// Quotient construction alone over a fixed (sequentially computed) weak
// partition — the phase this PR shards; before it, QuotientByPartition was
// the dominant sequential tail of every threaded build.
void PrintParallelQuotient(bench::BenchJson* json, bool* all_equal) {
  NodePartition part;
  summary::SummaryResult batch;
  PrintSweep(
      json, "quotient",
      "Parallel quotient construction (fixed weak partition)", all_equal,
      [&](const Graph& g) {
        part = ComputeWeakPartition(g);
        return BestOfTwo([&] {
          batch = QuotientByPartition(g, part, SummaryKind::kWeak, {}).value();
        });
      },
      [&](const Graph& g, uint32_t threads) {
        summary::SummaryOptions options;
        options.num_threads = threads;
        summary::SummaryResult r;
        double secs = BestOfTwo([&] {
          r = QuotientByPartition(g, part, SummaryKind::kWeak, options).value();
        });
        bool matched =
            r.graph.NumTriples() == batch.graph.NumTriples() &&
            r.stats.num_all_nodes == batch.stats.num_all_nodes &&
            summary::AreSummariesIsomorphic(batch.graph, r.graph);
        return ParallelRun{
            secs, matched,
            util::ResolveThreadCount(threads, g.Dense().num_data_edges())};
      });
}

// End-to-end pipeline (partition + quotient) through the Summarize facade
// with SummaryOptions::num_threads — what `rdfsum summarize --threads N`
// runs.
void PrintParallelPipeline(bench::BenchJson* json, bool* all_equal) {
  summary::SummaryResult batch;
  PrintSweep(
      json, "pipeline",
      "Parallel pipeline: partition + quotient (Summarize, weak)", all_equal,
      [&](const Graph& g) {
        summary::SummaryOptions options;
        options.num_threads = 1;
        return BestOfTwo(
            [&] { batch = Summarize(g, SummaryKind::kWeak, options); });
      },
      [&](const Graph& g, uint32_t threads) {
        summary::SummaryOptions options;
        options.num_threads = threads;
        summary::SummaryResult r;
        double secs =
            BestOfTwo([&] { r = Summarize(g, SummaryKind::kWeak, options); });
        bool matched =
            r.graph.NumTriples() == batch.graph.NumTriples() &&
            summary::AreSummariesIsomorphic(batch.graph, r.graph);
        return ParallelRun{
            secs, matched,
            util::ResolveThreadCount(threads, g.Dense().num_data_edges())};
      });
}

void PrintParallelBisimulation(bench::BenchJson* json, bool* all_equal) {
  NodePartition seq_part;
  PrintSweep(
      json, "bisim", "Parallel bisimulation refinement (depth 2, typed)",
      all_equal,
      [&](const Graph& g) {
        return BestOfTwo(
            [&] { seq_part = ComputeBisimulationPartition(g, 2, true); });
      },
      [&](const Graph& g, uint32_t threads) {
        NodePartition part;
        double secs = BestOfTwo([&] {
          part = ComputeBisimulationPartition(
              g, 2, true, summary::BisimulationDirection::kForwardBackward,
              threads);
        });
        return ParallelRun{
            secs, SamePartition(seq_part, part),
            util::ResolveThreadCount(threads, g.Dense().num_nodes())};
      });
}

// The ingestion pipeline this PR parallelizes: N-Triples parse (chunked),
// dictionary merge + replay, and TripleTable::Freeze, swept across thread
// counts. Each row records the requested and effective thread counts
// (effective = chunks the parser actually split into) plus the phase
// breakdown; any deviation from the sequential load — triples, ids, or
// frozen SPO permutation — clears *all_equal.
void PrintParallelLoad(bench::BenchJson* json, bool* all_equal) {
  struct LoadRun {
    double total = 0.0;
    double freeze_seconds = 0.0;
    io::ParseStats stats;
    Graph g;
    std::vector<Triple> spo;
    bool ok = false;
  };
  auto run_once = [](const std::string& input, uint32_t threads,
                     LoadRun* out) {
    Timer t;
    out->g = Graph();
    out->stats = io::ParseStats();
    io::ParseOptions options;
    options.num_threads = threads;
    out->ok =
        io::NTriplesParser::ParseString(input, &out->g, &out->stats, options)
            .ok();
    store::TripleTable table;
    out->g.ForEachTriple([&](const Triple& tr) { table.Append(tr); });
    Timer ft;
    table.Freeze(threads);
    out->freeze_seconds = ft.ElapsedSeconds();
    out->total = t.ElapsedSeconds();
    auto spo = table.Permutation(store::IndexKind::kSpo);
    out->spo.assign(spo.begin(), spo.end());
  };
  // Best-of-two like the other sweeps, keeping the stats of the faster run.
  auto best_of_two = [&](const std::string& input, uint32_t threads,
                         LoadRun* out) {
    LoadRun second;
    run_once(input, threads, out);
    run_once(input, threads, &second);
    if (second.total < out->total) *out = std::move(second);
  };

  TablePrinter table({"triples", "sequential (ms)", "1t (ms)", "2t (ms)",
                      "4t (ms)", "8t (ms)", "speedup@4", "equal"});
  for (uint64_t scale : BenchScales()) {
    const std::string input = io::NTriplesWriter::ToString(CachedBsbm(scale));
    LoadRun seq;
    best_of_two(input, 1, &seq);
    json->RecordLoad("load_sequential", scale, seq.total, 1, 1,
                     seq.stats.parse_seconds, seq.stats.intern_seconds,
                     seq.freeze_seconds);

    std::vector<std::string> row = {Num(seq.g.NumTriples()),
                                    FormatDouble(seq.total * 1e3, 1)};
    double at4 = seq.total;
    bool equal = seq.ok;
    for (uint32_t threads : kSweepThreads) {
      LoadRun par;
      best_of_two(input, threads, &par);
      json->RecordLoad("load_p" + std::to_string(threads), scale, par.total,
                       threads, par.stats.chunks, par.stats.parse_seconds,
                       par.stats.intern_seconds, par.freeze_seconds);
      row.push_back(FormatDouble(par.total * 1e3, 1));
      if (threads == 4) at4 = par.total;
      // Byte-identity: same triples with the same ids in the same insertion
      // order, same dictionary size, same frozen SPO permutation.
      equal = equal && par.ok && par.g.data() == seq.g.data() &&
              par.g.types() == seq.g.types() &&
              par.g.schema() == seq.g.schema() &&
              par.g.dict().size() == seq.g.dict().size() &&
              par.spo == seq.spo;
    }
    row.push_back(FormatDouble(seq.total / at4, 2) + "x");
    row.push_back(equal ? "yes" : "NO (bug!)");
    *all_equal = *all_equal && equal;
    table.AddRow(row);
  }
  table.Print(std::cout,
              "Parallel ingestion: chunked parse + dict merge + Freeze");
}

void PrintMaintenance() {
  // Streaming maintenance: amortized cost per inserted triple.
  TablePrinter stream({"triples", "maintainer total (ms)", "ns/triple",
                       "snapshot (ms)"});
  for (uint64_t scale : BenchScales()) {
    const Graph& g = CachedBsbm(scale);
    Timer t;
    summary::WeakSummaryMaintainer maintainer(g.dict_ptr());
    g.ForEachTriple(
        [&](const Triple& triple) { maintainer.AddTriple(triple); });
    double feed = t.ElapsedSeconds();
    Timer ts;
    auto snap = maintainer.Snapshot();
    double snap_s = ts.ElapsedSeconds();
    benchmark::DoNotOptimize(snap);
    stream.AddRow({Num(g.NumTriples()), FormatDouble(feed * 1e3, 1),
                   FormatDouble(feed / static_cast<double>(g.NumTriples()) *
                                    1e9,
                                0),
                   FormatDouble(snap_s * 1e3, 2)});
  }
  stream.Print(std::cout, "Streaming maintenance cost (insert-only)");
}

bool PrintParallel() {
  bench::BenchJson json("bench_parallel");
  // Interpretation context: speedups are bounded by the cores of the
  // machine that produced the file (per-row threads_effective records what
  // each measurement actually ran with).
  json.MetaInt("hardware_concurrency", std::thread::hardware_concurrency());
  bool all_equal = true;
  PrintParallelLoad(&json, &all_equal);
  PrintParallelWeak(&json, &all_equal);
  PrintParallelWeakPartitionOnly(&json, &all_equal);
  PrintParallelQuotient(&json, &all_equal);
  PrintParallelPipeline(&json, &all_equal);
  PrintParallelBisimulation(&json, &all_equal);
  PrintMaintenance();
  const char* path = std::getenv("RDFSUM_BENCH_JSON");
  std::string out = path != nullptr ? path : "BENCH_parallel.json";
  bool wrote = json.WriteFile(out);
  if (wrote) {
    std::cout << "wrote " << out << "\n";
  } else {
    // Failing loudly matters: CI's quotient gate reads this file next and
    // would otherwise silently validate a stale committed copy.
    std::cerr << "failed to write " << out << "\n";
  }
  if (!all_equal) {
    std::cerr << "BUG: a parallel path diverged from its sequential "
                 "baseline (see the 'equal' columns above)\n";
  }
  std::cout.flush();
  return all_equal && wrote;
}

void BM_ParallelWeak(benchmark::State& state) {
  const Graph& g = CachedBsbm(250'000);
  ParallelWeakOptions options;
  options.num_threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto r = ParallelWeakSummarize(g, options);
    benchmark::DoNotOptimize(r);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ParallelWeak)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_ParallelBisimulation(benchmark::State& state) {
  const Graph& g = CachedBsbm(250'000);
  ParallelBisimulationOptions options;
  options.num_threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto r = ParallelBisimulationSummarize(g, options);
    benchmark::DoNotOptimize(r);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ParallelBisimulation)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_MaintainerInsert(benchmark::State& state) {
  const Graph& g = CachedBsbm(100'000);
  for (auto _ : state) {
    summary::WeakSummaryMaintainer maintainer(g.dict_ptr());
    g.ForEachTriple(
        [&](const Triple& triple) { maintainer.AddTriple(triple); });
    benchmark::DoNotOptimize(maintainer);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumTriples()));
}
BENCHMARK(BM_MaintainerInsert)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rdfsum

int main(int argc, char** argv) {
  // A parallel/sequential divergence is a correctness bug, not a perf
  // datapoint: fail the run so CI's bench smoke gates on it.
  if (!rdfsum::PrintParallel()) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
