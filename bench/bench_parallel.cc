// The paper's §9 future work — parallel summarization — measured: the
// thread-sharded weak summarizer against the sequential batch builder, plus
// the streaming maintainer's per-triple cost.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "summary/isomorphism.h"
#include "summary/maintenance.h"
#include "summary/parallel.h"
#include "summary/summarizer.h"
#include "util/csv.h"
#include "util/timer.h"

namespace rdfsum {
namespace {

using bench::BenchScales;
using bench::CachedBsbm;
using bench::Num;
using summary::ParallelWeakOptions;
using summary::ParallelWeakSummarize;
using summary::Summarize;
using summary::SummaryKind;

void PrintParallel() {
  TablePrinter table({"triples", "sequential (ms)", "2 threads (ms)",
                      "4 threads (ms)", "speedup@4", "equal"});
  for (uint64_t scale : BenchScales()) {
    const Graph& g = CachedBsbm(scale);
    Timer t0;
    auto batch = Summarize(g, SummaryKind::kWeak);
    double seq = t0.ElapsedSeconds();

    auto timed = [&](uint32_t threads) {
      ParallelWeakOptions options;
      options.num_threads = threads;
      Timer t;
      auto r = ParallelWeakSummarize(g, options);
      double secs = t.ElapsedSeconds();
      return std::make_pair(secs, std::move(r));
    };
    auto [t2, r2] = timed(2);
    auto [t4, r4] = timed(4);
    bool equal = summary::AreSummariesIsomorphic(batch.graph, r4.graph);
    table.AddRow({Num(g.NumTriples()), FormatDouble(seq * 1e3, 1),
                  FormatDouble(t2 * 1e3, 1), FormatDouble(t4 * 1e3, 1),
                  FormatDouble(seq / t4, 2) + "x",
                  equal ? "yes" : "NO (bug!)"});
  }
  table.Print(std::cout, "Future work (§9): parallel weak summarization");

  // Streaming maintenance: amortized cost per inserted triple.
  TablePrinter stream({"triples", "maintainer total (ms)", "ns/triple",
                       "snapshot (ms)"});
  for (uint64_t scale : BenchScales()) {
    const Graph& g = CachedBsbm(scale);
    Timer t;
    summary::WeakSummaryMaintainer maintainer(g.dict_ptr());
    g.ForEachTriple(
        [&](const Triple& triple) { maintainer.AddTriple(triple); });
    double feed = t.ElapsedSeconds();
    Timer ts;
    auto snap = maintainer.Snapshot();
    double snap_s = ts.ElapsedSeconds();
    benchmark::DoNotOptimize(snap);
    stream.AddRow({Num(g.NumTriples()), FormatDouble(feed * 1e3, 1),
                   FormatDouble(feed / static_cast<double>(g.NumTriples()) *
                                    1e9,
                                0),
                   FormatDouble(snap_s * 1e3, 2)});
  }
  stream.Print(std::cout, "Streaming maintenance cost (insert-only)");
  std::cout.flush();
}

void BM_ParallelWeak(benchmark::State& state) {
  const Graph& g = CachedBsbm(250'000);
  ParallelWeakOptions options;
  options.num_threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto r = ParallelWeakSummarize(g, options);
    benchmark::DoNotOptimize(r);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ParallelWeak)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_MaintainerInsert(benchmark::State& state) {
  const Graph& g = CachedBsbm(100'000);
  for (auto _ : state) {
    summary::WeakSummaryMaintainer maintainer(g.dict_ptr());
    g.ForEachTriple(
        [&](const Triple& triple) { maintainer.AddTriple(triple); });
    benchmark::DoNotOptimize(maintainer);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumTriples()));
}
BENCHMARK(BM_MaintainerInsert)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rdfsum

int main(int argc, char** argv) {
  rdfsum::PrintParallel();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
