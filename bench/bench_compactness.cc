// Reproduces the §7 compactness claim: "the summary occupies at most 0.028
// of the data size, and in the best case, only 2.8e-4 of the data size."
// We report |H|e / |G|e for every kind and scale, and the same ratio for the
// node counts.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "rdf/graph_stats.h"
#include "summary/summarizer.h"
#include "util/csv.h"

namespace rdfsum {
namespace {

using bench::BenchScales;
using bench::CachedBsbm;
using bench::Num;
using summary::Summarize;
using summary::SummaryKind;
using summary::SummaryKindName;

void PrintCompactness() {
  TablePrinter table({"triples", "kind", "|H| edges", "edge ratio",
                      "|H| nodes", "node ratio"});
  double best = 1.0, worst = 0.0;
  for (uint64_t scale : BenchScales()) {
    const Graph& g = CachedBsbm(scale);
    GraphStats gs = ComputeGraphStats(g);
    for (SummaryKind kind : summary::kAllQuotientKinds) {
      auto r = Summarize(g, kind);
      double edge_ratio = static_cast<double>(r.stats.num_all_edges) /
                          static_cast<double>(gs.num_edges);
      double node_ratio = static_cast<double>(r.stats.num_all_nodes) /
                          static_cast<double>(gs.num_nodes);
      best = std::min(best, edge_ratio);
      worst = std::max(worst, edge_ratio);
      table.AddRow({Num(g.NumTriples()), SummaryKindName(kind),
                    Num(r.stats.num_all_edges), FormatDouble(edge_ratio, 6),
                    Num(r.stats.num_all_nodes), FormatDouble(node_ratio, 6)});
    }
  }
  table.Print(std::cout, "Compactness (§7): summary size / input size");
  std::cout << "\nworst edge ratio = " << FormatDouble(worst, 6)
            << " (paper: <= 0.028), best = " << FormatDouble(best, 6)
            << " (paper: 2.8e-4)\n";
  std::cout.flush();
}

void BM_SummarizeAllKinds(benchmark::State& state) {
  const Graph& g = CachedBsbm(100'000);
  for (auto _ : state) {
    for (SummaryKind kind : summary::kAllQuotientKinds) {
      auto r = Summarize(g, kind);
      benchmark::DoNotOptimize(r);
    }
  }
}
BENCHMARK(BM_SummarizeAllKinds)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rdfsum

int main(int argc, char** argv) {
  rdfsum::PrintCompactness();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
