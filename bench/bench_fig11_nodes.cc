// Reproduces Figure 11 of the paper: the number of data nodes (top chart)
// and of all nodes (bottom chart) in the four BSBM summaries, as the input
// grows. The paper's x-axis is 10M-100M triples; ours is 50k-1M (see
// bench_common.h). The claims to check:
//   - W and S counts are close to each other;
//   - TW and TS counts are close to each other;
//   - isolating typed nodes multiplies data nodes by ~5-50x;
//   - class nodes exceed W/S data nodes by a wide margin.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.h"
#include "summary/summarizer.h"
#include "util/csv.h"

namespace rdfsum {
namespace {

using bench::BenchScales;
using bench::CachedBsbm;
using bench::Num;
using summary::Summarize;
using summary::SummaryKind;
using summary::SummaryResult;

void PrintFigure11() {
  TablePrinter data_nodes(
      {"triples", "Weak", "Strong", "TypedWeak", "TypedStrong", "TW/W factor"});
  TablePrinter all_nodes(
      {"triples", "Weak", "Strong", "TypedWeak", "TypedStrong", "class nodes"});
  for (uint64_t scale : BenchScales()) {
    const Graph& g = CachedBsbm(scale);
    SummaryResult w = Summarize(g, SummaryKind::kWeak);
    SummaryResult s = Summarize(g, SummaryKind::kStrong);
    SummaryResult tw = Summarize(g, SummaryKind::kTypedWeak);
    SummaryResult ts = Summarize(g, SummaryKind::kTypedStrong);
    double factor = static_cast<double>(tw.stats.num_data_nodes) /
                    static_cast<double>(w.stats.num_data_nodes);
    data_nodes.AddRow({Num(g.NumTriples()), Num(w.stats.num_data_nodes),
                       Num(s.stats.num_data_nodes),
                       Num(tw.stats.num_data_nodes),
                       Num(ts.stats.num_data_nodes),
                       FormatDouble(factor, 1) + "x"});
    all_nodes.AddRow({Num(g.NumTriples()), Num(w.stats.num_all_nodes),
                      Num(s.stats.num_all_nodes), Num(tw.stats.num_all_nodes),
                      Num(ts.stats.num_all_nodes),
                      Num(w.stats.num_class_nodes)});
  }
  data_nodes.Print(std::cout,
                   "Figure 11 (top): data nodes in BSBM summaries");
  all_nodes.Print(std::cout,
                  "Figure 11 (bottom): all nodes in BSBM summaries");
  std::cout.flush();
}

void BM_SummarizeNodes(benchmark::State& state, SummaryKind kind) {
  const Graph& g = CachedBsbm(100'000);
  uint64_t nodes = 0;
  for (auto _ : state) {
    SummaryResult r = Summarize(g, kind);
    nodes = r.stats.num_data_nodes;
    benchmark::DoNotOptimize(r);
  }
  state.counters["data_nodes"] = static_cast<double>(nodes);
  state.counters["triples"] = static_cast<double>(g.NumTriples());
}

BENCHMARK_CAPTURE(BM_SummarizeNodes, weak, SummaryKind::kWeak)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SummarizeNodes, strong, SummaryKind::kStrong)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SummarizeNodes, typed_weak, SummaryKind::kTypedWeak)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SummarizeNodes, typed_strong, SummaryKind::kTypedStrong)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rdfsum

int main(int argc, char** argv) {
  rdfsum::PrintFigure11();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
