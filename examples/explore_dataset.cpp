// Dataset exploration — the paper's first motivating use case: getting
// acquainted with an unknown RDF dataset by looking at its summaries.
//
//   ./examples/explore_dataset [file.nt] [output-prefix]
//
// With no arguments, a BSBM-like dataset is generated. Otherwise the given
// N-Triples file is loaded. The tool prints dataset statistics, builds all
// four summaries, and writes each one both as N-Triples and as Graphviz DOT
// next to the output prefix (default: ./explore).

#include <iostream>
#include <string>

#include "gen/bsbm.h"
#include "io/dot_writer.h"
#include "io/ntriples_parser.h"
#include "io/ntriples_writer.h"
#include "rdf/graph_stats.h"
#include "summary/summarizer.h"
#include "util/timer.h"

using namespace rdfsum;

int main(int argc, char** argv) {
  Graph g;
  if (argc > 1) {
    io::ParseStats stats;
    io::ParseOptions options;
    options.strict = false;  // tolerate crawl noise
    Timer timer;
    Status st = io::NTriplesParser::ParseFile(argv[1], &g, &stats, options);
    if (!st.ok()) {
      std::cerr << "failed to load " << argv[1] << ": " << st.ToString()
                << "\n";
      return 1;
    }
    std::cout << "Loaded " << argv[1] << ": " << stats.triples << " triples ("
              << stats.skipped << " malformed lines skipped) in "
              << timer.ElapsedMillis() << " ms\n";
  } else {
    gen::BsbmOptions opt;
    opt.num_products = 2000;
    g = gen::GenerateBsbm(opt);
    std::cout << "No input file given; generated a BSBM-like dataset.\n";
  }

  GraphStats stats = ComputeGraphStats(g);
  std::cout << "\nDataset profile:\n  " << stats.ToString() << "\n";
  double typed_share = stats.num_data_nodes == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(
                                         stats.num_typed_resources) /
                                 static_cast<double>(stats.num_data_nodes);
  std::cout << "  typed resources: " << typed_share << "%\n\n";

  std::string prefix = argc > 2 ? argv[2] : "explore";
  for (summary::SummaryKind kind : summary::kAllQuotientKinds) {
    Timer timer;
    summary::SummaryResult r = summary::Summarize(g, kind);
    std::cout << "Summary " << summary::SummaryKindName(kind) << " ("
              << timer.ElapsedMillis() << " ms): " << r.stats.ToString()
              << "\n";
    std::string base =
        prefix + "." + std::string(summary::SummaryKindName(kind));
    Status st = io::NTriplesWriter::WriteFile(r.graph, base + ".nt");
    if (st.ok()) st = io::DotWriter::WriteFile(r.graph, base + ".dot");
    if (!st.ok()) {
      std::cerr << "  write failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cout << "  wrote " << base << ".nt and " << base << ".dot\n";
  }
  std::cout << "\nRender with: dot -Tpng " << prefix << ".W.dot -o summary.png\n";
  return 0;
}
