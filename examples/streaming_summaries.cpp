// Streaming summarization — the incremental side of the paper's future work:
// an RDF feed arrives triple by triple (here: a BSBM-like dataset replayed
// in arrival order) and the weak summary is maintained online; snapshots are
// taken periodically and compared against a from-scratch rebuild.
//
//   ./examples/streaming_summaries

#include <iostream>
#include <vector>

#include "gen/bsbm.h"
#include "summary/isomorphism.h"
#include "summary/maintenance.h"
#include "summary/parallel.h"
#include "summary/summarizer.h"
#include "util/timer.h"

using namespace rdfsum;

int main() {
  gen::BsbmOptions opt;
  opt.num_products = 2000;
  Graph feed = gen::GenerateBsbm(opt);
  std::vector<Triple> triples;
  feed.ForEachTriple([&](const Triple& t) { triples.push_back(t); });
  std::cout << "replaying a feed of " << triples.size() << " triples\n\n";

  summary::WeakSummaryMaintainer maintainer(feed.dict_ptr());
  Graph seen(feed.dict_ptr());

  size_t checkpoint = triples.size() / 5;
  Timer total;
  for (size_t i = 0; i < triples.size(); ++i) {
    maintainer.AddTriple(triples[i]);
    seen.Add(triples[i]);
    if ((i + 1) % checkpoint == 0 || i + 1 == triples.size()) {
      summary::SummaryResult snapshot = maintainer.Snapshot();
      summary::SummaryResult rebuilt =
          summary::Summarize(seen, summary::SummaryKind::kWeak);
      bool same =
          summary::AreSummariesIsomorphic(snapshot.graph, rebuilt.graph);
      std::cout << "after " << (i + 1) << " triples: summary has "
                << snapshot.stats.num_data_nodes << " data nodes, "
                << snapshot.stats.num_all_edges << " edges; matches rebuild: "
                << (same ? "yes" : "NO (bug!)") << "\n";
    }
  }
  std::cout << "\nmaintained " << triples.size() << " insertions in "
            << total.ElapsedMillis() << " ms ("
            << total.ElapsedMicros() * 1000 /
                   static_cast<int64_t>(triples.size())
            << " ns/triple)\n";

  // For comparison: one-shot parallel summarization of the final graph.
  Timer par_timer;
  summary::ParallelWeakOptions par_opt;
  par_opt.num_threads = 4;
  summary::SummaryResult par = summary::ParallelWeakSummarize(seen, par_opt);
  std::cout << "one-shot parallel (4 threads) rebuild: "
            << par_timer.ElapsedMillis() << " ms, "
            << par.stats.num_data_nodes << " data nodes\n";
  return 0;
}
