// Reconstructs the paper's running examples end to end:
//   - the Figure 2 sample graph and its Table 1 property cliques,
//   - the four summaries of Figures 4 / 6 / 7 / 9,
//   - the §2.1 book example: saturation and the hasAuthor query that is
//     empty without reasoning and non-empty with it.
//
//   ./examples/paper_example

#include <iostream>

#include "gen/paper_example.h"
#include "io/dot_writer.h"
#include "query/evaluator.h"
#include "query/sparql_parser.h"
#include "reasoner/saturation.h"
#include "summary/cliques.h"
#include "summary/summarizer.h"

using namespace rdfsum;

namespace {

void PrintCliqueTable(const gen::Figure2Example& ex) {
  summary::PropertyCliques cliques =
      summary::ComputePropertyCliques(ex.graph);
  auto render = [&](const std::vector<std::vector<TermId>>& members,
                    uint32_t id) {
    if (id == 0) return std::string("{}");
    std::string out = "{";
    for (TermId p : members[id - 1]) {
      if (out.size() > 1) out += ",";
      out += io::IriLocalName(ex.graph.dict().Decode(p).lexical);
    }
    return out + "}";
  };
  struct Row {
    const char* name;
    TermId id;
  };
  std::cout << "Table 1 — source/target cliques:\n";
  for (Row row : std::initializer_list<Row>{{"r1", ex.r1},
                                            {"r2", ex.r2},
                                            {"r3", ex.r3},
                                            {"r4", ex.r4},
                                            {"r5", ex.r5},
                                            {"a1", ex.a1},
                                            {"a2", ex.a2},
                                            {"t1", ex.t1},
                                            {"e1", ex.e1},
                                            {"c1", ex.c1},
                                            {"r6", ex.r6}}) {
    std::cout << "  " << row.name << ": SC="
              << render(cliques.source_clique_members,
                        cliques.SourceCliqueOf(row.id))
              << " TC="
              << render(cliques.target_clique_members,
                        cliques.TargetCliqueOf(row.id))
              << "\n";
  }
}

void PrintSummary(const char* figure, const Graph& g,
                  summary::SummaryKind kind) {
  summary::SummaryResult r = summary::Summarize(g, kind);
  std::cout << "\n" << figure << " — " << summary::SummaryKindName(kind)
            << " summary: " << r.stats.num_data_nodes << " data nodes, "
            << r.graph.data().size() << " data edges, "
            << r.graph.types().size() << " type edges\n";
  io::DotOptions dot;
  dot.graph_name = figure;
  std::cout << io::DotWriter::ToString(r.graph, dot);
}

}  // namespace

int main() {
  gen::Figure2Example ex = gen::BuildFigure2();
  std::cout << "Figure 2 sample graph: " << ex.graph.NumTriples()
            << " triples\n\n";
  PrintCliqueTable(ex);

  PrintSummary("Figure 4", ex.graph, summary::SummaryKind::kWeak);
  PrintSummary("Figure 6", ex.graph, summary::SummaryKind::kTypeBased);
  PrintSummary("Figure 7", ex.graph, summary::SummaryKind::kTypedWeak);
  PrintSummary("Figure 9", ex.graph, summary::SummaryKind::kStrong);

  // --- §2.1: implicit triples and query answering.
  gen::BookExample book = gen::BuildBookExample();
  Graph saturated = reasoner::Saturate(book.graph);
  std::cout << "\nBook example: " << book.graph.NumTriples()
            << " explicit triples, " << saturated.NumTriples()
            << " after saturation\n";

  auto q = query::ParseSparql(
      "PREFIX b: <http://example.org/book/>\n"
      "SELECT ?name WHERE { ?x b:hasAuthor ?a . ?a b:hasName ?name . "
      "?x b:hasTitle \"Le Port des Brumes\" }");
  if (!q.ok()) {
    std::cerr << "query parse error: " << q.status().ToString() << "\n";
    return 1;
  }
  query::BgpEvaluator explicit_only(book.graph);
  query::BgpEvaluator with_reasoning(saturated);
  std::cout << "q(G):  " << (explicit_only.ExistsMatch(*q) ? "non-empty"
                                                           : "empty (!)")
            << "  — the complete answer needs implicit triples\n";
  auto rows = with_reasoning.Evaluate(*q);
  std::cout << "q(G∞): ";
  for (const auto& row : *rows) std::cout << row[0].ToNTriples();
  std::cout << "\n";
  return 0;
}
