// Query-oriented use of summaries (the paper's §1 motivation): static
// analysis of SPARQL BGP queries against a summary instead of the graph.
// By RBGP representativeness (Proposition 1), a query that is empty on the
// summary's saturation is guaranteed empty on the graph — so an optimizer
// can prune it without touching the data.
//
//   ./examples/query_static_analysis

#include <iostream>
#include <string>
#include <vector>

#include "gen/lubm.h"
#include "query/evaluator.h"
#include "query/rbgp.h"
#include "query/sparql_parser.h"
#include "reasoner/saturation.h"
#include "summary/summarizer.h"
#include "util/timer.h"

using namespace rdfsum;

int main() {
  // A LUBM-like dataset with a deep schema: reasoning matters here.
  gen::LubmOptions opt;
  opt.num_universities = 4;
  Graph g = gen::GenerateLubm(opt);
  Graph g_inf = reasoner::Saturate(g);

  // Build the weak summary; saturate it (Proposition 5 says this equals the
  // summary of the saturated graph for W).
  summary::SummaryResult w =
      summary::Summarize(g, summary::SummaryKind::kWeak);
  Graph w_inf = reasoner::Saturate(w.graph);
  std::cout << "graph: " << g_inf.NumTriples()
            << " triples (saturated); weak summary: " << w_inf.NumTriples()
            << " triples — static analysis runs on the small one\n\n";

  query::BgpEvaluator on_graph(g_inf);
  query::BgpEvaluator on_summary(w_inf);

  const std::vector<std::pair<std::string, std::string>> queries = {
      {"professors and their courses",
       "PREFIX l: <http://lubm.example.org/>\n"
       "SELECT ?p ?c WHERE { ?p l:teacherOf ?c . ?p l:worksFor ?d }"},
      {"advisors of students taking a course",
       "PREFIX l: <http://lubm.example.org/>\n"
       "SELECT ?a WHERE { ?s l:advisor ?a . ?s l:takesCourse ?c }"},
      {"employees (implicit type via worksFor domain)",
       "PREFIX l: <http://lubm.example.org/>\n"
       "SELECT ?x WHERE { ?x a l:Employee }"},
      {"publications citing publications (absent pattern)",
       "PREFIX l: <http://lubm.example.org/>\n"
       "SELECT ?p WHERE { ?p l:cites ?q }"},
      {"a course that takes a course (absent join)",
       "PREFIX l: <http://lubm.example.org/>\n"
       "SELECT ?c WHERE { ?x l:teacherOf ?c . ?c l:takesCourse ?y }"},
  };

  int pruned = 0;
  for (const auto& [label, text] : queries) {
    auto q = query::ParseSparql(text);
    if (!q.ok()) {
      std::cerr << "parse error for '" << label
                << "': " << q.status().ToString() << "\n";
      return 1;
    }
    Timer t_summary;
    bool summary_match = on_summary.ExistsMatch(*q);
    double summary_us = static_cast<double>(t_summary.ElapsedMicros());
    Timer t_graph;
    bool graph_match = on_graph.ExistsMatch(*q);
    double graph_us = static_cast<double>(t_graph.ElapsedMicros());

    std::cout << label << ":\n  summary says "
              << (summary_match ? "maybe non-empty" : "EMPTY — prune!")
              << " (" << summary_us << " us); graph says "
              << (graph_match ? "non-empty" : "empty") << " (" << graph_us
              << " us)\n";
    if (!summary_match) {
      ++pruned;
      if (graph_match) {
        std::cerr << "  REPRESENTATIVENESS VIOLATION (bug)\n";
        return 1;
      }
    }
  }
  std::cout << "\n" << pruned
            << " queries pruned without touching the full graph.\n";
  return 0;
}
