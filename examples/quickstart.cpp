// Quickstart: build a small RDF graph programmatically, summarize it with
// all four summary kinds, and inspect the results.
//
//   ./examples/quickstart
//
// This walks through the core public API: Graph, Summarize, SummaryResult.

#include <iostream>

#include "io/dot_writer.h"
#include "io/ntriples_writer.h"
#include "rdf/graph.h"
#include "rdf/graph_stats.h"
#include "summary/summarizer.h"

using namespace rdfsum;

int main() {
  // 1. Build a graph: a tiny bibliography with books, authors and one
  // untyped resource.
  Graph g;
  Dictionary& d = g.dict();
  const Vocabulary& v = g.vocab();
  auto iri = [&](const std::string& local) {
    return d.EncodeIri("http://example.org/" + local);
  };

  TermId book_class = iri("Book");
  TermId author = iri("author"), title = iri("title"), knows = iri("knows");
  for (int i = 0; i < 3; ++i) {
    TermId book = iri("book" + std::to_string(i));
    TermId person = iri("person" + std::to_string(i));
    g.Add({book, v.rdf_type, book_class});
    g.Add({book, author, person});
    g.Add({book, title, d.EncodeLiteral("Title " + std::to_string(i))});
    g.Add({person, knows, iri("person" + std::to_string((i + 1) % 3))});
  }

  GraphStats stats = ComputeGraphStats(g);
  std::cout << "Input graph: " << stats.ToString() << "\n\n";

  // 2. Summarize with each kind and report the sizes.
  for (summary::SummaryKind kind : summary::kAllQuotientKinds) {
    summary::SummaryOptions options;
    options.record_members = true;
    summary::SummaryResult r = summary::Summarize(g, kind, options);
    std::cout << "Summary " << summary::SummaryKindName(kind) << ": "
              << r.stats.ToString() << "\n";
    // Every input data node maps to a summary node (the rd mapping).
    std::cout << "  books map to "
              << r.graph.dict()
                     .Decode(r.node_map.at(iri("book0")))
                     .ToNTriples()
              << "\n";
  }

  // 3. Summaries are RDF graphs: serialize one.
  summary::SummaryResult weak = summary::Summarize(g, summary::SummaryKind::kWeak);
  std::cout << "\nWeak summary as N-Triples:\n"
            << io::NTriplesWriter::ToString(weak.graph);
  std::cout << "\nGraphviz of the weak summary (pipe into `dot -Tpng`):\n"
            << io::DotWriter::ToString(weak.graph);
  return 0;
}
