// rdfsum_client — wire-protocol client for a running `rdfsum serve` daemon
// (docs/PROTOCOL.md).
//
//   rdfsum_client query    <host:port> <sparql...> [--plan naive|greedy|summary]
//                          [--limit N] [--offset N] [--timeout-ms N]
//                          [--max-rows N] [--cancel-after N] [--parallelism N]
//   rdfsum_client stats    <host:port>
//   rdfsum_client reload   <host:port> [image.rsb]
//   rdfsum_client shutdown <host:port>
//
// Exit codes mirror rdfsum's classes so scripts treat local and remote
// failures uniformly: 0 ok; 1 other failure; 2 usage; 3 bad input data /
// transport (refused connection, malformed server response, corrupt image);
// 4 resource-governance trip (timeout, cancellation, row budget, admission
// rejection). A refused connection or a malformed response is NEVER exit 0.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "query/plan.h"
#include "server/client.h"
#include "util/status.h"

namespace rdfsum {
namespace {

constexpr int kExitUsage = 2;
constexpr int kExitData = 3;
constexpr int kExitBudget = 4;

/// Same classification as rdfsum's ExitCodeFor: governance codes -> 4,
/// input/transport codes -> 3, anything else non-OK -> 1.
int ExitCodeFor(const Status& st) {
  if (st.ok()) return 0;
  if (st.IsDeadlineExceeded() || st.IsCancelled() || st.IsResourceExhausted()) {
    return kExitBudget;
  }
  if (st.IsInvalidArgument() || st.IsCorruption() || st.IsIOError() ||
      st.IsNotFound() || st.IsNotSupported()) {
    return kExitData;
  }
  return 1;
}

int FailStatus(const Status& st) {
  std::cerr << "rdfsum_client: " << st.ToString() << "\n";
  return ExitCodeFor(st);
}

int Usage() {
  std::cerr <<
      "usage:\n"
      "  rdfsum_client query    <host:port> <sparql string>\n"
      "                         [--plan naive|greedy|summary] [--limit N]\n"
      "                         [--offset N] [--timeout-ms N] [--max-rows N]\n"
      "                         [--cancel-after N] [--parallelism N]\n"
      "                           --parallelism: morsel workers for this\n"
      "                           query (0 = server default, 1 = sequential;\n"
      "                           the server clamps to its own max)\n"
      "  rdfsum_client stats    <host:port>\n"
      "  rdfsum_client reload   <host:port> [image.rsb]\n"
      "  rdfsum_client shutdown <host:port>\n"
      "\n"
      "exit codes: 0 ok; 1 other failure; 2 usage; 3 transport/data error\n"
      "  (connection refused, malformed response, corrupt image); 4 budget\n"
      "  trip (timeout, cancellation, row budget, server at capacity)\n";
  return kExitUsage;
}

bool ParseUint64(const std::string& s, uint64_t* out) {
  try {
    size_t pos = 0;
    unsigned long long v = std::stoull(s, &pos);
    if (pos != s.size()) return false;
    *out = v;
    return true;
  } catch (...) {
    return false;
  }
}

bool SplitHostPort(const std::string& arg, std::string* host,
                   uint16_t* port) {
  size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon + 1 >= arg.size()) return false;
  uint64_t p = 0;
  if (!ParseUint64(arg.substr(colon + 1), &p) || p == 0 || p > 0xFFFF) {
    return false;
  }
  *host = arg.substr(0, colon);
  *port = static_cast<uint16_t>(p);
  return true;
}

int Run(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  std::string host;
  uint16_t port = 0;
  if (!SplitHostPort(argv[2], &host, &port)) {
    std::cerr << "rdfsum_client: bad <host:port> " << argv[2] << "\n";
    return kExitUsage;
  }
  std::vector<std::string> args(argv + 3, argv + argc);

  if (cmd == "query") {
    server::QueryRequest req;
    uint64_t cancel_after = 0;
    std::vector<std::string> positional;
    for (size_t i = 0; i < args.size(); ++i) {
      uint64_t v = 0;
      if (args[i] == "--plan" && i + 1 < args.size()) {
        query::PlannerMode mode;
        if (!query::ParsePlannerMode(args[++i], &mode)) {
          std::cerr << "rdfsum_client: bad --plan " << args[i] << "\n";
          return kExitUsage;
        }
        req.planner = static_cast<uint8_t>(mode);
      } else if (args[i] == "--limit" && i + 1 < args.size() &&
                 ParseUint64(args[i + 1], &v)) {
        req.limit = v;
        ++i;
      } else if (args[i] == "--offset" && i + 1 < args.size() &&
                 ParseUint64(args[i + 1], &v)) {
        req.offset = v;
        ++i;
      } else if (args[i] == "--timeout-ms" && i + 1 < args.size() &&
                 ParseUint64(args[i + 1], &v)) {
        req.timeout_ms = static_cast<uint32_t>(v);
        ++i;
      } else if (args[i] == "--max-rows" && i + 1 < args.size() &&
                 ParseUint64(args[i + 1], &v)) {
        req.max_rows = v;
        ++i;
      } else if (args[i] == "--cancel-after" && i + 1 < args.size() &&
                 ParseUint64(args[i + 1], &v)) {
        cancel_after = v;
        ++i;
      } else if (args[i] == "--parallelism" && i + 1 < args.size() &&
                 ParseUint64(args[i + 1], &v)) {
        if (v > UINT32_MAX) {
          std::cerr << "rdfsum_client: bad --parallelism " << args[i + 1]
                    << "\n";
          return kExitUsage;
        }
        req.parallelism = static_cast<uint32_t>(v);
        ++i;
      } else if (args[i].rfind("--", 0) == 0) {
        std::cerr << "rdfsum_client: unknown option " << args[i] << "\n";
        return kExitUsage;
      } else {
        positional.push_back(args[i]);
      }
    }
    if (positional.empty()) return Usage();
    std::string sparql;
    for (const std::string& p : positional) {
      sparql += (sparql.empty() ? "" : " ") + p;
    }
    auto client = server::Client::Connect(host, port);
    if (!client.ok()) return FailStatus(client.status());
    uint64_t rows = 0, printed = 0;
    Status st = (*client)->Query(
        sparql, req,
        [&](const std::vector<std::string>& cols) {
          for (size_t i = 0; i < cols.size(); ++i) {
            if (i > 0) std::cout << "\t";
            std::cout << cols[i];
          }
          std::cout << "\n";
          ++printed;
          return cancel_after == 0 || printed < cancel_after;
        },
        &rows);
    if (!st.ok()) return FailStatus(st);
    std::cout << "-- " << rows << " row(s) (epoch "
              << (*client)->server_epoch() << ")\n";
    return 0;
  }

  if (cmd == "stats") {
    if (!args.empty()) return Usage();
    auto client = server::Client::Connect(host, port);
    if (!client.ok()) return FailStatus(client.status());
    auto text = (*client)->Stats();
    if (!text.ok()) return FailStatus(text.status());
    std::cout << *text;
    return 0;
  }

  if (cmd == "reload") {
    if (args.size() > 1) return Usage();
    auto client = server::Client::Connect(host, port);
    if (!client.ok()) return FailStatus(client.status());
    Status st = (*client)->Reload(args.empty() ? "" : args[0]);
    if (!st.ok()) return FailStatus(st);
    std::cout << "reloaded\n";
    return 0;
  }

  if (cmd == "shutdown") {
    if (!args.empty()) return Usage();
    auto client = server::Client::Connect(host, port);
    if (!client.ok()) return FailStatus(client.status());
    Status st = (*client)->Shutdown();
    if (!st.ok()) return FailStatus(st);
    std::cout << "server shut down\n";
    return 0;
  }

  return Usage();
}

}  // namespace
}  // namespace rdfsum

int main(int argc, char** argv) { return rdfsum::Run(argc, argv); }
