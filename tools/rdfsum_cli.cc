// rdfsum — command-line front end to the library.
//
//   rdfsum stats     <file>                       dataset profile + phases
//   rdfsum summarize <file> [--kind K] [--out P]  build one/all summaries
//                    [--saturate] [--report] [--strict-typed] [--depth N]
//   rdfsum saturate  <file> [--out out.nt]        materialize G∞
//   rdfsum convert   <in> <out.nt>                Turtle/N-Triples -> N-Triples
//   rdfsum query     <file> <sparql...> [--no-prune] [--explicit-only]
//                    [--plan naive|greedy|summary] [--explain] [--limit N]
//                    [--offset N | --page N] [--stream]
//   rdfsum freeze    <file> [--out graph.rsb] [--no-dense]
//                                                 write a frozen store image
//
// stats/summarize/query accept `--store graph.rsb` instead of <file>: the
// image is mmap'd and opened in milliseconds (docs/FORMAT.md) instead of
// re-parsed. A query with --explicit-only --no-prune and a non-summary plan
// runs zero-copy straight off the mapping; everything else materializes the
// graph from the image — still far cheaper than parsing.
//
// Input format is chosen by extension: .ttl/.turtle uses the Turtle parser,
// anything else the N-Triples parser. The global --threads flag (see Usage)
// parallelizes the N-Triples load, freeze, and summarization with
// byte-identical output.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gen/bsbm.h"
#include "io/dot_writer.h"
#include "io/ntriples_parser.h"
#include "io/ntriples_writer.h"
#include "io/turtle_parser.h"
#include "query/pruned_evaluator.h"
#include "query/sparql_parser.h"
#include "rdf/graph.h"
#include "rdf/graph_stats.h"
#include "store/mmap_store.h"
#include "reasoner/saturation.h"
#include "server/server.h"
#include "summary/report.h"
#include "summary/summarizer.h"
#include "util/exec_context.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace rdfsum {
namespace {

// Exit-code classes (documented in Usage()): 0 success, 1 other failure,
// 2 usage error, 3 bad input data (parse/corruption/missing file),
// 4 governance trip (deadline/cancellation/budget).
constexpr int kExitUsage = 2;
constexpr int kExitData = 3;
constexpr int kExitBudget = 4;

int ExitCodeFor(const Status& st) {
  if (st.ok()) return 0;
  if (st.IsDeadlineExceeded() || st.IsCancelled() || st.IsResourceExhausted()) {
    return kExitBudget;
  }
  if (st.IsInvalidArgument() || st.IsCorruption() || st.IsIOError() ||
      st.IsNotFound()) {
    return kExitData;
  }
  return 1;
}

int FailStatus(const Status& st) {
  std::cerr << "rdfsum: " << st.ToString() << "\n";
  return ExitCodeFor(st);
}

int Fail(const std::string& msg) {
  std::cerr << "rdfsum: " << msg << "\n";
  return kExitUsage;
}

int Usage() {
  std::cerr <<
      "usage:\n"
      "  rdfsum stats     <file>\n"
      "  rdfsum summarize <file> [--kind W|S|TW|TS|T|BISIM|all] [--out prefix]\n"
      "                   [--saturate] [--report] [--strict-typed] [--depth N]\n"
      "  rdfsum saturate  <file> [--out out.nt]\n"
      "  rdfsum convert   <in.(nt|ttl)> <out.nt>\n"
      "  rdfsum query     <file> <sparql string> [--no-prune] [--explicit-only]\n"
      "                   [--plan naive|greedy|summary] [--explain] [--limit N]\n"
      "                   [--offset N | --page N] [--stream]\n"
      "                   (--explain prints the chosen join order per step:\n"
      "                    pattern, index, join op, est vs. actual rows;\n"
      "                    --page N is 1-based and needs --limit as the page\n"
      "                    size; --stream flushes each row as it is produced)\n"
      "  rdfsum freeze    <file> [--out graph.rsb] [--no-dense]\n"
      "                   (writes a frozen store image: mmap-able dictionary,\n"
      "                    SPO/POS/OSP permutations + stats, dense substrate;\n"
      "                    --no-dense drops the substrate — queries only)\n"
      "  rdfsum serve     <graph.rsb> [--host H] [--port N] [--workers N]\n"
      "                   [--queue-depth N] [--no-plan-cache]\n"
      "                   [--plan naive|greedy|summary]\n"
      "                   [--default-parallelism N] [--max-parallelism N]\n"
      "                   (defaults 1 and 8: per-request morsel fan-out when\n"
      "                    the request doesn't ask, and the per-request cap;\n"
      "                    a k-way query holds k-1 admission slots)\n"
      "                   (daemon over the wire protocol of docs/PROTOCOL.md;\n"
      "                    port 0 picks an ephemeral port, printed on start;\n"
      "                    SIGHUP re-opens the image as a new epoch with zero\n"
      "                    downtime; the governance flags below become the\n"
      "                    per-request default budgets)\n"
      "  rdfsum gen bsbm  <approx-triples> --out <file.nt> [--seed N]\n"
      "                   (deterministic BSBM-shaped dataset, sized by triple\n"
      "                    count — the smoke/bench harnesses' generator)\n"
      "\n"
      "stats/summarize/query accept `--store graph.rsb` instead of <file>:\n"
      "  the frozen image is mmap'd and validated instead of re-parsed, so\n"
      "  the store is queryable in milliseconds; results are byte-identical\n"
      "  to the parse path\n"
      "\n"
      "global flags (any command):\n"
      "  --threads N        worker threads for the N-Triples load\n"
      "                     (chunked parse + sharded intern), freeze's\n"
      "                     permutation sorts, summarize's partition +\n"
      "                     quotient phases, and query's morsel-parallel\n"
      "                     drain; 0 = all cores, 1 = sequential (default).\n"
      "                     Output is byte-identical at every thread count.\n"
      "\n"
      "global resource-governance flags (any command; 0 = unlimited):\n"
      "  --timeout-ms N     wall-clock budget; exceeding it aborts with\n"
      "                     DeadlineExceeded\n"
      "  --max-rows N       query answer-row budget (ResourceExhausted)\n"
      "  --mem-budget-mb N  operator-state budget; hash joins degrade to\n"
      "                     nested-loop instead of exceeding it\n"
      "\n"
      "exit codes: 0 ok; 1 other failure; 2 usage; 3 bad input data\n"
      "  (parse error, corrupt summary file, missing file); 4 resource\n"
      "  governance trip (timeout, cancellation, row/memory budget)\n";
  return kExitUsage;
}

Status LoadGraph(const std::string& path, Graph* g,
                 util::ExecContext* exec = nullptr, uint32_t threads = 1,
                 io::ParseStats* stats_out = nullptr) {
  Status st;
  if (EndsWith(path, ".ttl") || EndsWith(path, ".turtle")) {
    io::TurtleParseOptions options;
    options.strict = false;
    options.exec = exec;
    io::TurtleParseStats stats;
    st = io::TurtleParser::ParseFile(path, g, &stats, options);
    if (st.ok() && stats.skipped > 0) {
      std::cerr << "warning: skipped " << stats.skipped
                << " malformed statement(s)\n";
      for (const std::string& d : stats.diagnostics) {
        std::cerr << "  " << d << "\n";
      }
    }
  } else {
    io::ParseOptions options;
    options.strict = false;
    options.exec = exec;
    options.num_threads = threads;
    io::ParseStats stats;
    st = io::NTriplesParser::ParseFile(path, g, &stats, options);
    if (st.ok() && stats.skipped > 0) {
      std::cerr << "warning: skipped " << stats.skipped
                << " malformed line(s)\n";
      for (const std::string& d : stats.diagnostics) {
        std::cerr << "  " << d << "\n";
      }
    }
    if (stats_out != nullptr) *stats_out = stats;
  }
  return st;
}

/// Strict decimal uint32 parse: rejects junk, trailing characters, and
/// out-of-range values (std::stoul alone accepts "-1" as ~4e9).
bool ParseUint32(const std::string& s, uint32_t* out) {
  try {
    size_t pos = 0;
    unsigned long v = std::stoul(s, &pos);
    if (pos != s.size() || v > 0xFFFFFFFFul) return false;
    *out = static_cast<uint32_t>(v);
    return true;
  } catch (...) {
    return false;
  }
}

bool ParseKind(const std::string& name, summary::SummaryKind* kind) {
  std::string upper;
  for (char c : name) upper.push_back(static_cast<char>(std::toupper(c)));
  if (upper == "W") *kind = summary::SummaryKind::kWeak;
  else if (upper == "S") *kind = summary::SummaryKind::kStrong;
  else if (upper == "TW") *kind = summary::SummaryKind::kTypedWeak;
  else if (upper == "TS") *kind = summary::SummaryKind::kTypedStrong;
  else if (upper == "T") *kind = summary::SummaryKind::kTypeBased;
  else if (upper == "BISIM") *kind = summary::SummaryKind::kBisimulation;
  else return false;
  return true;
}

/// Opens a frozen image and materializes its graph. On success `*store_out`
/// owns the mapping the graph's dictionary borrows — keep it alive as long
/// as the graph.
Status LoadGraphFromStore(const std::string& store_path,
                          std::unique_ptr<store::MmapStore>* store_out,
                          Graph* g) {
  StatusOr<std::unique_ptr<store::MmapStore>> opened =
      store::MmapStore::Open(store_path);
  if (!opened.ok()) return opened.status();
  StatusOr<Graph> from_image = (*opened)->ToGraph();
  if (!from_image.ok()) return from_image.status();
  *g = std::move(from_image).value();
  *store_out = std::move(opened).value();
  return Status::OK();
}

/// "parse 12.3 ms" with sub-ms resolution — phase times on small inputs are
/// fractions of a millisecond and "0 ms" breakdowns diagnose nothing.
std::string PhaseMs(const char* name, double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s %.2f ms", name, seconds * 1e3);
  return buf;
}

int CmdStats(const std::vector<std::string>& args, util::ExecContext* exec,
             uint32_t threads) {
  std::string store_path;
  std::vector<std::string> positional;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--store" && i + 1 < args.size()) store_path = args[++i];
    else if (StartsWith(args[i], "--")) return Fail("unknown option " + args[i]);
    else positional.push_back(args[i]);
  }
  if (store_path.empty() ? positional.size() != 1 : !positional.empty()) {
    return Usage();
  }
  const std::string source = store_path.empty() ? positional[0] : store_path;
  std::unique_ptr<store::MmapStore> mstore;
  Graph g;
  io::ParseStats parse_stats;
  Timer timer;
  Status load = store_path.empty()
                    ? LoadGraph(positional[0], &g, exec, threads, &parse_stats)
                    : LoadGraphFromStore(store_path, &mstore, &g);
  if (!load.ok()) return FailStatus(load);
  std::cout << "loaded " << source << " in " << timer.ElapsedMillis()
            << " ms\n";
  if (store_path.empty()) {
    // The cold-path phase breakdown (parse / intern / freeze / dense): the
    // two loader phases come from ParseStats; freeze and dense are measured
    // here on the loaded graph so a regression in any cold-path stage is
    // visible from this one command.
    Timer freeze_timer;
    store::TripleTable table;
    g.ForEachTriple([&](const Triple& t) { table.Append(t); });
    table.Freeze(threads);
    const double freeze_seconds = freeze_timer.ElapsedSeconds();
    Timer dense_timer;
    g.Dense();
    const double dense_seconds = dense_timer.ElapsedSeconds();
    std::cout << "phases (threads=" << threads
              << ", chunks=" << parse_stats.chunks << "): "
              << PhaseMs("parse", parse_stats.parse_seconds) << ", "
              << PhaseMs("intern", parse_stats.intern_seconds) << ", "
              << PhaseMs("freeze", freeze_seconds) << ", "
              << PhaseMs("dense", dense_seconds) << "\n";
  }
  GraphStats stats = ComputeGraphStats(g);
  std::cout << stats.ToString() << "\n";
  Status wb = CheckWellBehaved(g);
  std::cout << "well-behaved: " << (wb.ok() ? "yes" : wb.ToString()) << "\n";
  return 0;
}

// `--threads` is parallel end-to-end through SummaryOptions::num_threads:
// the quotient phase shards for every kind, and W/BISIM additionally run
// their sharded partition paths. Byte-identical at every thread count.
StatusOr<summary::SummaryResult> RunSummarize(
    const Graph& g, summary::SummaryKind kind,
    const summary::SummaryOptions& options, uint32_t threads,
    util::ExecContext* exec) {
  summary::SummaryOptions threaded = options;
  threaded.num_threads = threads;
  threaded.exec = exec;
  return summary::TrySummarize(g, kind, threaded);
}

int CmdSummarize(const std::vector<std::string>& args, util::ExecContext* exec,
                 uint32_t threads) {
  std::string kind_name = "all";
  std::string out_prefix;
  std::string store_path;
  bool saturate = false, report = false;
  summary::SummaryOptions options;
  options.record_members = true;
  std::vector<std::string> positional;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--kind" && i + 1 < args.size()) kind_name = args[++i];
    else if (args[i] == "--out" && i + 1 < args.size()) out_prefix = args[++i];
    else if (args[i] == "--store" && i + 1 < args.size()) store_path = args[++i];
    else if (args[i] == "--saturate") saturate = true;
    else if (args[i] == "--report") report = true;
    else if (args[i] == "--strict-typed") {
      options.typed_mode = summary::TypedSummaryMode::kUntypedDataGraph;
    } else if (args[i] == "--depth" && i + 1 < args.size()) {
      if (!ParseUint32(args[++i], &options.bisimulation_depth)) {
        return Fail("bad --depth " + args[i]);
      }
    } else if (StartsWith(args[i], "--")) {
      return Fail("unknown option " + args[i]);
    } else {
      positional.push_back(args[i]);
    }
  }
  if (store_path.empty() ? positional.size() != 1 : !positional.empty()) {
    return Usage();
  }

  std::unique_ptr<store::MmapStore> mstore;
  Graph g;
  Status load = store_path.empty()
                    ? LoadGraph(positional[0], &g, exec, threads)
                    : LoadGraphFromStore(store_path, &mstore, &g);
  if (!load.ok()) return FailStatus(load);
  if (saturate) g = reasoner::Saturate(g);

  std::vector<summary::SummaryKind> kinds;
  if (kind_name == "all") {
    kinds.assign(std::begin(summary::kAllQuotientKinds),
                 std::end(summary::kAllQuotientKinds));
  } else {
    summary::SummaryKind kind;
    if (!ParseKind(kind_name, &kind)) return Fail("bad --kind " + kind_name);
    kinds.push_back(kind);
  }

  for (summary::SummaryKind kind : kinds) {
    Timer timer;
    StatusOr<summary::SummaryResult> r =
        RunSummarize(g, kind, options, threads, exec);
    if (!r.ok()) return FailStatus(r.status());
    std::cout << summary::SummaryKindName(kind) << ": " << r->stats.ToString()
              << " (" << timer.ElapsedMillis() << " ms)\n";
    if (report) std::cout << summary::DescribeSummary(*r).ToString();
    if (!out_prefix.empty()) {
      std::string base =
          out_prefix + "." + summary::SummaryKindName(kind);
      Status st = io::NTriplesWriter::WriteFile(r->graph, base + ".nt");
      if (st.ok()) st = summary::WriteSummaryDotFile(*r, base + ".dot");
      if (!st.ok()) return FailStatus(st);
      std::cout << "  wrote " << base << ".nt / .dot\n";
    }
  }
  return 0;
}

int CmdSaturate(const std::vector<std::string>& args, util::ExecContext* exec,
                uint32_t threads) {
  if (args.empty()) return Usage();
  std::string out;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) out = args[++i];
    else return Fail("unknown option " + args[i]);
  }
  Graph g;
  Status load = LoadGraph(args[0], &g, exec, threads);
  if (!load.ok()) return FailStatus(load);
  reasoner::SaturationStats stats;
  Timer timer;
  Graph sat = reasoner::Saturate(g, &stats);
  std::cout << stats.input_triples << " -> " << stats.output_triples
            << " triples (+" << stats.derived_data << " data, +"
            << stats.derived_types << " type, +" << stats.derived_schema
            << " schema) in " << timer.ElapsedMillis() << " ms\n";
  if (!out.empty()) {
    Status st = io::NTriplesWriter::WriteFile(sat, out);
    if (!st.ok()) return FailStatus(st);
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}

int CmdConvert(const std::vector<std::string>& args, util::ExecContext* exec,
               uint32_t threads) {
  if (args.size() != 2) return Usage();
  Graph g;
  Status load = LoadGraph(args[0], &g, exec, threads);
  if (!load.ok()) return FailStatus(load);
  Status st = io::NTriplesWriter::WriteFile(g, args[1]);
  if (!st.ok()) return FailStatus(st);
  std::cout << "wrote " << g.NumTriples() << " triples to " << args[1]
            << "\n";
  return 0;
}

int CmdQuery(const std::vector<std::string>& args, util::ExecContext* exec,
             uint32_t threads) {
  bool prune = true;
  bool saturate = true;
  bool explain = false;
  bool stream = false;
  bool limit_set = false, offset_set = false, page_set = false;
  uint32_t limit = 1000;
  uint32_t offset = 0;
  uint32_t page = 0;
  query::PlannerMode planner = query::PlannerMode::kGreedy;
  std::string store_path;
  std::vector<std::string> positional;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--no-prune") prune = false;
    else if (args[i] == "--explicit-only") saturate = false;
    else if (args[i] == "--explain") explain = true;
    else if (args[i] == "--stream") stream = true;
    else if (args[i] == "--store" && i + 1 < args.size()) {
      store_path = args[++i];
    } else if (args[i] == "--plan" && i + 1 < args.size()) {
      if (!query::ParsePlannerMode(args[++i], &planner)) {
        return Fail("bad --plan " + args[i] + " (naive|greedy|summary)");
      }
    } else if (args[i] == "--limit" && i + 1 < args.size()) {
      if (!ParseUint32(args[++i], &limit)) {
        return Fail("bad --limit " + args[i]);
      }
      limit_set = true;
    } else if (args[i] == "--offset" && i + 1 < args.size()) {
      if (!ParseUint32(args[++i], &offset)) {
        return Fail("bad --offset " + args[i]);
      }
      offset_set = true;
    } else if (args[i] == "--page" && i + 1 < args.size()) {
      if (!ParseUint32(args[++i], &page) || page == 0) {
        return Fail("bad --page " + args[i] + " (pages are 1-based)");
      }
      page_set = true;
    } else if (StartsWith(args[i], "--")) {
      return Fail("unknown option " + args[i]);
    } else {
      positional.push_back(args[i]);
    }
  }
  // With --store every positional is SPARQL; otherwise the first is the
  // input file.
  size_t sparql_begin = store_path.empty() ? 1 : 0;
  if (positional.size() < sparql_begin + 1) return Usage();
  std::string sparql;
  for (size_t i = sparql_begin; i < positional.size(); ++i) {
    sparql += (sparql.empty() ? "" : " ") + positional[i];
  }
  if (page_set && offset_set) {
    return Fail("--page and --offset are mutually exclusive");
  }
  if (page_set && !limit_set) {
    return Fail("--page needs --limit as the page size");
  }
  // The cursor skips (page-1)*limit distinct rows, then emits one page.
  uint64_t skip = page_set
                      ? static_cast<uint64_t>(page - 1) * limit
                      : static_cast<uint64_t>(offset);
  if (explain && (limit_set || offset_set || page_set)) {
    std::cerr << "warning: --explain enumerates every embedding to report "
                 "actual cardinalities; --limit/--offset/--page are "
                 "ignored\n";
  }
  auto q = query::ParseSparql(sparql);
  if (!q.ok()) return FailStatus(q.status());

  // Store fast path: with no pruning, no saturation, and no summary-based
  // planning, the query runs zero-copy off the mmap'd permutations — no
  // Graph is ever materialized. Any of those features forces ToGraph()
  // first (still far cheaper than parsing).
  const bool zero_copy = !store_path.empty() && !prune && !saturate &&
                         planner != query::PlannerMode::kSummary;

  std::unique_ptr<store::MmapStore> mstore;
  Graph g;
  if (zero_copy) {
    StatusOr<std::unique_ptr<store::MmapStore>> opened =
        store::MmapStore::Open(store_path);
    if (!opened.ok()) return FailStatus(opened.status());
    mstore = std::move(opened).value();
  } else {
    Status load = store_path.empty()
                      ? LoadGraph(positional[0], &g, exec, threads)
                      : LoadGraphFromStore(store_path, &mstore, &g);
    if (!load.ok()) return FailStatus(load);
  }

  // --no-prune skips the pruning evaluator entirely (its summary and
  // second saturation would be wasted work); only the estimator is built
  // when the summary planner asks for one.
  std::optional<query::SummaryPrunedEvaluator> pruned;
  std::optional<Graph> direct_target;
  std::optional<summary::SummaryResult> model;
  std::optional<summary::CardinalityEstimator> estimator;
  std::optional<query::BgpEvaluator> direct;
  if (zero_copy) {
    query::EvaluatorOptions direct_options;
    direct_options.planner = planner;
    direct.emplace(mstore->dict(), mstore->table(), direct_options);
  } else if (prune) {
    query::SummaryPrunedEvaluator::Options options;
    options.saturate = saturate;
    options.planner = planner;
    pruned.emplace(g, options);
  } else {
    direct_target.emplace(saturate ? reasoner::Saturate(g) : g.Clone());
    query::EvaluatorOptions direct_options;
    direct_options.planner = planner;
    if (planner == query::PlannerMode::kSummary) {
      model.emplace(
          summary::Summarize(*direct_target, summary::SummaryKind::kWeak));
      estimator.emplace(*direct_target, *model);
      direct_options.estimator = &*estimator;
    }
    direct.emplace(*direct_target, direct_options);
  }

  if (explain) {
    Timer timer;
    StatusOr<query::Explanation> ex =
        prune ? pruned->Explain(*q) : direct->Explain(*q);
    if (!ex.ok()) return FailStatus(ex.status());
    std::cout << ex->ToString();
    std::cout << "-- explained in " << timer.ElapsedMillis() << " ms\n";
    if (prune) {
      const auto& stats = pruned->stats();
      std::cout << "pruning stats: " << stats.exists_checks << " check(s), "
                << stats.pruned_by_summary << " pruned, "
                << stats.graph_probes << " graph probe(s)\n";
    }
    return 0;
  }

  // Streaming drain: rows print as the operator tree produces them, and the
  // tree stops scanning the moment the limit quota is filled.
  Timer timer;
  query::CursorOptions cursor_options;
  cursor_options.limit = limit;
  cursor_options.offset = static_cast<size_t>(skip);
  cursor_options.exec = exec;
  // The global --threads is the morsel fan-out for the drain itself (0 =
  // all cores, 1 = sequential); rows are byte-identical at every count.
  cursor_options.parallelism = threads;
  StatusOr<std::unique_ptr<query::Cursor>> cursor =
      prune ? pruned->Open(*q, cursor_options)
            : direct->Open(*q, cursor_options);
  if (!cursor.ok()) return FailStatus(cursor.status());
  uint64_t printed = 0;
  query::IdRow encoded;
  while ((*cursor)->Next(&encoded)) {
    query::Row row = prune ? pruned->Decode(encoded) : direct->Decode(encoded);
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) std::cout << "\t";
      std::cout << row[i].ToNTriples();
    }
    std::cout << "\n";
    if (stream) std::cout.flush();
    ++printed;
  }
  // Next() returning false means exhaustion or failure; only status() tells
  // them apart. A governance trip mid-drain still printed the rows that fit
  // the budget — the non-zero exit is what the caller scripts against.
  if (!(*cursor)->status().ok()) return FailStatus((*cursor)->status());
  std::cout << "-- " << printed << " row(s) in " << timer.ElapsedMillis()
            << " ms (plan=" << query::PlannerModeName(planner) << ")";
  if (skip > 0) std::cout << " (offset " << skip << ")";
  if (prune && pruned->stats().pruned_by_summary > 0) {
    std::cout << " (pruned by summary without touching the graph)";
  }
  std::cout << "\n";
  return 0;
}

int CmdFreeze(const std::vector<std::string>& args, util::ExecContext* exec,
              uint32_t threads) {
  if (args.empty()) return Usage();
  std::string out;
  store::FreezeOptions options;
  options.num_threads = threads;
  double freeze_seconds = 0.0;
  options.freeze_seconds = &freeze_seconds;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) out = args[++i];
    else if (args[i] == "--no-dense") options.include_dense = false;
    else return Fail("unknown option " + args[i]);
  }
  if (out.empty()) out = args[0] + ".rsb";
  Graph g;
  io::ParseStats parse_stats;
  Timer timer;
  Status load = LoadGraph(args[0], &g, exec, threads, &parse_stats);
  if (!load.ok()) return FailStatus(load);
  // Warm the dense substrate here (timed separately) so FreezeGraphToFile
  // reuses the cache and freeze_seconds isolates the permutation sorts.
  double dense_seconds = 0.0;
  if (options.include_dense) {
    Timer dense_timer;
    g.Dense();
    dense_seconds = dense_timer.ElapsedSeconds();
  }
  Status st = store::FreezeGraphToFile(g, out, options);
  if (!st.ok()) return FailStatus(st);
  // Re-open what we just wrote: cheap, and it proves the image passes the
  // full corruption wall before anyone depends on it.
  StatusOr<std::unique_ptr<store::MmapStore>> check =
      store::MmapStore::Open(out);
  if (!check.ok()) return FailStatus(check.status());
  std::cout << "froze " << g.NumTriples() << " triples ("
            << (*check)->image().size() << " bytes"
            << (options.include_dense ? ", dense substrate" : "") << ") to "
            << out << " in " << timer.ElapsedMillis() << " ms\n"
            << "phases (threads=" << threads << ", chunks="
            << parse_stats.chunks << "): "
            << PhaseMs("parse", parse_stats.parse_seconds) << ", "
            << PhaseMs("intern", parse_stats.intern_seconds) << ", "
            << PhaseMs("freeze", freeze_seconds) << ", "
            << PhaseMs("dense", dense_seconds) << "\n";
  return 0;
}

// Signal flag for the serve loop: handlers only record the signal; the
// polling loop in CmdServe acts on it (async-signal-safety).
volatile std::sig_atomic_t g_serve_signal = 0;
void OnServeSignal(int sig) { g_serve_signal = sig; }

int CmdServe(const std::vector<std::string>& args,
             const util::ExecContext::Limits& limits) {
  server::ServerOptions options;
  options.default_limits = limits;
  std::vector<std::string> positional;
  for (size_t i = 0; i < args.size(); ++i) {
    uint32_t v = 0;
    if (args[i] == "--host" && i + 1 < args.size()) {
      options.host = args[++i];
    } else if (args[i] == "--port" && i + 1 < args.size()) {
      if (!ParseUint32(args[++i], &v) || v > 0xFFFF) {
        return Fail("bad --port " + args[i]);
      }
      options.port = static_cast<uint16_t>(v);
    } else if (args[i] == "--workers" && i + 1 < args.size()) {
      if (!ParseUint32(args[++i], &v) || v == 0) {
        return Fail("bad --workers " + args[i]);
      }
      options.num_workers = v;
    } else if (args[i] == "--queue-depth" && i + 1 < args.size()) {
      if (!ParseUint32(args[++i], &v)) {
        return Fail("bad --queue-depth " + args[i]);
      }
      options.queue_depth = v;
    } else if (args[i] == "--default-parallelism" && i + 1 < args.size()) {
      if (!ParseUint32(args[++i], &v)) {
        return Fail("bad --default-parallelism " + args[i]);
      }
      options.default_parallelism = v;
    } else if (args[i] == "--max-parallelism" && i + 1 < args.size()) {
      if (!ParseUint32(args[++i], &v)) {
        return Fail("bad --max-parallelism " + args[i]);
      }
      options.max_parallelism = v;
    } else if (args[i] == "--no-plan-cache") {
      options.plan_cache = false;
    } else if (args[i] == "--plan" && i + 1 < args.size()) {
      if (!query::ParsePlannerMode(args[++i], &options.default_planner)) {
        return Fail("bad --plan " + args[i] + " (naive|greedy|summary)");
      }
    } else if (StartsWith(args[i], "--")) {
      return Fail("unknown option " + args[i]);
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.size() != 1) return Usage();

  server::Server server;
  Status st = server.Start(positional[0], options);
  if (!st.ok()) return FailStatus(st);
  // The harness contract: one parseable line on stdout once the socket is
  // live. Scripts grep the port out of it (ephemeral binds).
  std::cout << "rdfsum serve: listening on " << options.host << ":"
            << server.port() << " epoch " << server.snapshot()->epoch()
            << " (" << server.snapshot()->num_triples() << " triples)"
            << std::endl;

  std::signal(SIGINT, OnServeSignal);
  std::signal(SIGTERM, OnServeSignal);
  std::signal(SIGHUP, OnServeSignal);
  while (!server.stopped()) {
    if (g_serve_signal == SIGHUP) {
      g_serve_signal = 0;
      Status rs = server.Reload("");
      if (rs.ok()) {
        std::cout << "rdfsum serve: reloaded, epoch "
                  << server.snapshot()->epoch() << std::endl;
      } else {
        // A failed reload keeps the old epoch serving; report and carry on.
        std::cerr << "rdfsum serve: reload failed: " << rs.ToString() << "\n";
      }
    } else if (g_serve_signal != 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  server.Wait();
  std::cout << "rdfsum serve: shut down cleanly" << std::endl;
  return 0;
}

int CmdGen(const std::vector<std::string>& args) {
  std::string out;
  uint32_t seed = 0;
  bool seed_set = false;
  std::vector<std::string> positional;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) {
      out = args[++i];
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      if (!ParseUint32(args[++i], &seed)) return Fail("bad --seed " + args[i]);
      seed_set = true;
    } else if (StartsWith(args[i], "--")) {
      return Fail("unknown option " + args[i]);
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.size() != 2 || positional[0] != "bsbm" || out.empty()) {
    return Usage();
  }
  uint32_t target = 0;
  if (!ParseUint32(positional[1], &target) || target == 0) {
    return Fail("bad triple count " + positional[1]);
  }
  gen::BsbmOptions options;
  options.num_products = gen::BsbmProductsForTriples(target);
  if (seed_set) options.seed = seed;
  Graph g = gen::GenerateBsbm(options);
  Status st = io::NTriplesWriter::WriteFile(g, out);
  if (!st.ok()) return FailStatus(st);
  std::cout << "generated " << g.NumTriples() << " triples ("
            << options.num_products << " products, seed " << options.seed
            << ") to " << out << "\n";
  return 0;
}

// Strips the global governance flags out of `args` (they are accepted
// anywhere on the command line), builds one ExecContext per invocation from
// them, and dispatches. A run with no flag set dispatches ungoverned
// (exec = nullptr) — zero overhead on the hot paths.
int Run(const std::string& cmd, const std::vector<std::string>& args) {
  util::ExecContext::Limits limits;
  uint32_t threads = 1;
  std::vector<std::string> rest;
  for (size_t i = 0; i < args.size(); ++i) {
    uint32_t v = 0;
    if (args[i] == "--timeout-ms" && i + 1 < args.size()) {
      if (!ParseUint32(args[++i], &v)) {
        return Fail("bad --timeout-ms " + args[i]);
      }
      limits.timeout_ms = v;
    } else if (args[i] == "--max-rows" && i + 1 < args.size()) {
      if (!ParseUint32(args[++i], &v)) {
        return Fail("bad --max-rows " + args[i]);
      }
      limits.max_rows = v;
    } else if (args[i] == "--mem-budget-mb" && i + 1 < args.size()) {
      if (!ParseUint32(args[++i], &v)) {
        return Fail("bad --mem-budget-mb " + args[i]);
      }
      limits.memory_budget_bytes = static_cast<uint64_t>(v) << 20;
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      if (!ParseUint32(args[++i], &threads)) {
        return Fail("bad --threads " + args[i]);
      }
    } else {
      rest.push_back(args[i]);
    }
  }
  const bool governed = limits.timeout_ms != 0 || limits.max_rows != 0 ||
                        limits.memory_budget_bytes != 0;
  util::ExecContext ctx(limits);
  util::ExecContext* exec = governed ? &ctx : nullptr;
  if (cmd == "stats") return CmdStats(rest, exec, threads);
  if (cmd == "summarize") return CmdSummarize(rest, exec, threads);
  if (cmd == "saturate") return CmdSaturate(rest, exec, threads);
  if (cmd == "convert") return CmdConvert(rest, exec, threads);
  if (cmd == "query") return CmdQuery(rest, exec, threads);
  if (cmd == "freeze") return CmdFreeze(rest, exec, threads);
  // serve gets the raw Limits: they become per-request defaults, applied by
  // the server as each request's ExecContext, not one context for the whole
  // daemon lifetime.
  if (cmd == "serve") return CmdServe(rest, limits);
  if (cmd == "gen") return CmdGen(rest);
  return Usage();
}

}  // namespace
}  // namespace rdfsum

int main(int argc, char** argv) {
  if (argc < 2) return rdfsum::Usage();
  std::vector<std::string> args(argv + 2, argv + argc);
  return rdfsum::Run(argv[1], args);
}
